"""Backend conformance: the numpy backend is bit-identical to the seed.

Configuring a scorer with ``set_score_backend("numpy", "fp64")`` (or not
configuring it at all) must leave every score, rank and gradient **bitwise**
equal to a freshly-built reference scorer: the reference configuration is a
pure pass-through, so any byte of difference is a threading bug in the
kernels.  Accelerator backends (torch / cupy), when importable, are held to
``allclose`` against the fp64 reference instead — different carriers
legitimately reorder reductions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.core.baselines import SimpleRuleModel
from repro.core.cartesian import CartesianProductPredictor
from repro.eval import evaluate_model
from repro.models import ALL_EMBEDDING_MODELS, ModelConfig, make_model
from repro.rules.amie import AmieConfig, AmieMiner
from repro.rules.predictor import RuleBasedPredictor

NUM_ENTITIES = 30
NUM_RELATIONS = 5

HEADS = np.array([0, 3, 7, 7, 12])
RELATIONS = np.array([0, 1, 2, 2, 4])
TAILS = np.array([1, 4, 9, 2, 20])


def build_model(name: str, seed: int = 0):
    extra = {"embedding_height": 4} if name == "ConvE" else {}
    model = make_model(
        name, NUM_ENTITIES, NUM_RELATIONS, ModelConfig(dim=16, seed=seed, extra=extra)
    )
    model.train_mode(False)
    return model


def build_rule_scorers(toy_dataset):
    rules = AmieMiner(toy_dataset.train, AmieConfig()).mine()
    return [
        RuleBasedPredictor(rules.rules, toy_dataset.train, toy_dataset.num_entities),
        SimpleRuleModel(toy_dataset.train, toy_dataset.num_entities, threshold=0.5),
        CartesianProductPredictor(toy_dataset.train, toy_dataset.num_entities),
    ]


def assert_scorer_bitwise_identical(configured, reference, num_entities):
    """Every scoring surface of ``configured`` byte-equals ``reference``."""
    queries_h = HEADS % num_entities
    queries_r = RELATIONS % max(
        1, getattr(reference, "num_relations", NUM_RELATIONS)
    )
    queries_t = TAILS % num_entities
    np.testing.assert_array_equal(
        configured.score_tails_batch(queries_h, queries_r),
        reference.score_tails_batch(queries_h, queries_r),
    )
    np.testing.assert_array_equal(
        configured.score_heads_batch(queries_r, queries_t),
        reference.score_heads_batch(queries_r, queries_t),
    )
    np.testing.assert_array_equal(
        configured.score_all_tails(int(queries_h[0]), int(queries_r[0])),
        reference.score_all_tails(int(queries_h[0]), int(queries_r[0])),
    )
    np.testing.assert_array_equal(
        configured.score_all_heads(int(queries_r[0]), int(queries_t[0])),
        reference.score_all_heads(int(queries_r[0]), int(queries_t[0])),
    )


# ---------------------------------------------------------------------------- numpy bit-identity
@pytest.mark.parametrize("name", ALL_EMBEDDING_MODELS)
def test_numpy_backend_scores_bit_identical(name):
    configured = build_model(name)
    configured.set_score_backend("numpy", "fp64")
    reference = build_model(name)
    assert_scorer_bitwise_identical(configured, reference, NUM_ENTITIES)
    # Pointwise scores ride the autodiff path: equally untouched.
    np.testing.assert_array_equal(
        configured.score_triples_np(HEADS, RELATIONS, TAILS),
        reference.score_triples_np(HEADS, RELATIONS, TAILS),
    )


@pytest.mark.parametrize("name", ALL_EMBEDDING_MODELS)
def test_numpy_backend_gradients_bit_identical(name):
    with use_backend("numpy"):
        configured = build_model(name)
        configured.set_score_backend("numpy", "fp64")
        loss_a = configured.score_triples(HEADS, RELATIONS, TAILS).sum()
        loss_a.backward()
        grads_a = {
            key: np.array(p.grad) for key, p in configured.parameters().items()
        }
    reference = build_model(name)
    loss_b = reference.score_triples(HEADS, RELATIONS, TAILS).sum()
    loss_b.backward()
    for key, parameter in reference.parameters().items():
        np.testing.assert_array_equal(grads_a[key], parameter.grad, err_msg=key)


def test_numpy_backend_rule_scorers_bit_identical(toy_dataset):
    for configured, reference in zip(
        build_rule_scorers(toy_dataset), build_rule_scorers(toy_dataset)
    ):
        configured.set_score_backend("numpy", "fp64")
        assert_scorer_bitwise_identical(
            configured, reference, toy_dataset.num_entities
        )


@pytest.mark.parametrize("name", ["TransE", "ComplEx", "ConvE"])
def test_numpy_backend_evaluation_ranks_bit_identical(name, toy_dataset):
    configured = make_model(
        name,
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        ModelConfig(dim=16, seed=3, extra={"embedding_height": 4} if name == "ConvE" else {}),
    )
    configured.train_mode(False)
    configured.set_score_backend("numpy", "fp64")
    reference = make_model(
        name,
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        ModelConfig(dim=16, seed=3, extra={"embedding_height": 4} if name == "ConvE" else {}),
    )
    reference.train_mode(False)
    configured_result = evaluate_model(configured, toy_dataset)
    reference_result = evaluate_model(reference, toy_dataset)
    for expected, actual in zip(reference_result.records, configured_result.records):
        assert expected.raw_rank == actual.raw_rank
        assert expected.filtered_rank == actual.filtered_rank


# ---------------------------------------------------------------------------- accelerators
ACCELERATORS = [name for name in ("torch", "cupy") if name in available_backends()]


@pytest.mark.skipif(not ACCELERATORS, reason="no accelerator backend importable")
@pytest.mark.parametrize("backend_name", ACCELERATORS)
@pytest.mark.parametrize("name", ALL_EMBEDDING_MODELS)
def test_accelerator_backend_scores_allclose(backend_name, name):
    configured = build_model(name)
    configured.set_score_backend(backend_name, "fp32")
    reference = build_model(name)
    ec = configured.score_compute
    actual = np.asarray(
        ec.as_numpy(configured.score_tails_batch(HEADS, RELATIONS)), dtype=np.float64
    )
    expected = reference.score_tails_batch(HEADS, RELATIONS)
    np.testing.assert_allclose(actual, expected, rtol=2e-3, atol=2e-3)
    actual_heads = np.asarray(
        ec.as_numpy(configured.score_heads_batch(RELATIONS, TAILS)), dtype=np.float64
    )
    expected_heads = reference.score_heads_batch(RELATIONS, TAILS)
    np.testing.assert_allclose(actual_heads, expected_heads, rtol=2e-3, atol=2e-3)
