"""Integration tests: the experiment drivers reproduce the paper's qualitative claims.

A single session-scoped :class:`Workbench` is shared by every test so each
(model, dataset) pair is trained exactly once with a deliberately small budget;
the assertions target structure and direction (the paper's R1-R3 claims), not
absolute accuracy values.
"""

import math

import pytest

from repro.experiments import (
    ALL_DATASETS,
    EXPERIMENT_INDEX,
    ExperimentConfig,
    FB15K,
    FB15K237,
    WN18,
    WN18RR,
    Workbench,
    ablation_thresholds,
    figure1_overview,
    figure2_mediators,
    figure4_redundancy_pie,
    figure5_6_per_relation_heatmap,
    figure7_8_category_breakdown,
    section42_leakage,
    table1_statistics,
    table2_cartesian_strength,
    table3_cartesian_predictor,
    table5_fb15k,
    table6_wn18,
    table7_outperform_redundancy,
    table8_best_model_counts,
    table9_10_12_category_hits,
    table11_yago,
    table13_hits1_simple_model,
)


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    config = ExperimentConfig(
        scale="tiny",
        seed=13,
        dim=16,
        epochs=10,
        num_negatives=2,
        models=("TransE", "DistMult", "ComplEx", "RotatE"),
        include_amie=True,
    )
    return Workbench(config)


# ------------------------------------------------------------------ workbench mechanics
def test_workbench_builds_all_six_datasets(workbench):
    datasets = workbench.all_datasets()
    assert set(datasets) == set(ALL_DATASETS)
    assert len(datasets[FB15K237].train) < len(datasets[FB15K].train)
    assert len(datasets[WN18RR].train) < len(datasets[WN18].train)


def test_workbench_rejects_unknown_dataset(workbench):
    with pytest.raises(KeyError):
        workbench.dataset("FB15k-999")


def test_workbench_caches_scorers_and_evaluations(workbench):
    first = workbench.scorer("TransE", FB15K)
    second = workbench.scorer("TransE", FB15K)
    assert first is second
    assert workbench.evaluation("TransE", FB15K) is workbench.evaluation("TransE", FB15K)


def test_workbench_ingests_streamed_dataset(workbench, tmp_path, toy_dataset):
    """A stream-ingested directory plugs into the workbench's analysis caches."""
    from repro.kg import save_dataset

    directory = save_dataset(toy_dataset, tmp_path / "toy")
    ingest_bench = Workbench(
        ExperimentConfig(scale="tiny", seed=13, ingest_chunk_size=4, ingest_max_queue_chunks=2)
    )
    dataset = ingest_bench.ingest(directory)
    assert dataset.name == "toy"
    assert ingest_bench.dataset("toy") is dataset
    # the streamed dataset matches the source label-wise and feeds the audit accessors
    streamed_labels = {dataset.vocab.decode_triple(t) for t in dataset.train}
    source_labels = {toy_dataset.vocab.decode_triple(t) for t in toy_dataset.train}
    assert streamed_labels == source_labels
    report = ingest_bench.redundancy("toy")
    assert report.reverse_pairs  # directed_by / films_directed


def test_workbench_reingest_invalidates_analysis_caches(tmp_path, toy_dataset):
    """Re-ingesting under the same name must not serve the old data's analyses."""
    from repro.kg import Dataset, TripleSet, Vocabulary, save_dataset

    bench = Workbench(ExperimentConfig(scale="tiny", seed=13))
    directory = save_dataset(toy_dataset, tmp_path / "v1")
    bench.ingest(directory, name="mydata")
    assert bench.redundancy("mydata").reverse_pairs

    # v2: a plain chain with no redundancy at all, exported under the same name
    vocab = Vocabulary.from_labels([f"e{i}" for i in range(4)], ["r"])
    plain = Dataset(
        name="mydata",
        vocab=vocab,
        train=TripleSet([(0, 0, 1), (1, 0, 2), (2, 0, 3)]),
        valid=TripleSet(),
        test=TripleSet(),
    )
    bench.ingest(save_dataset(plain, tmp_path / "v2"), name="mydata")
    fresh = bench.redundancy("mydata")
    assert not fresh.reverse_pairs
    assert not fresh.duplicate_pairs


@pytest.mark.multiprocess
def test_workbench_sharded_evaluation_matches_single_process(workbench, capped_workers):
    """A sharded workbench reports bit-identical metrics for the same scorer."""
    single = workbench.evaluation("DistMult", WN18RR)
    sharded_bench = Workbench(
        ExperimentConfig(
            scale="tiny",
            seed=13,
            dim=16,
            epochs=10,
            num_negatives=2,
            models=("DistMult",),
            eval_workers=capped_workers(2),
            eval_shard_size=8,
        )
    )
    sharded = sharded_bench.evaluation("DistMult", WN18RR)
    assert single.metrics().as_dict() == sharded.metrics().as_dict()


def test_workbench_lineup_includes_amie(workbench):
    lineup = workbench.lineup()
    assert lineup[-1] == "AMIE"
    assert "TransE" in lineup
    assert "AMIE" not in workbench.lineup(include_amie=False)


def test_experiment_index_is_complete():
    assert len(EXPERIMENT_INDEX) >= 16
    assert all(callable(driver) for driver in EXPERIMENT_INDEX.values())


# ------------------------------------------------------------------ dataset-level drivers
def test_table1_rows_cover_all_datasets(workbench):
    result = table1_statistics(workbench)
    assert len(result["rows"]) == 6
    names = {row["Dataset"] for row in result["rows"]}
    assert names == set(ALL_DATASETS)
    assert "Table 1" in result["text"]


def test_figure2_snapshot_statistics(workbench):
    values = figure2_mediators(workbench)["values"]
    assert values["triples adjacent to CVT nodes"] > 0
    assert values["concatenated relations"] > 0
    assert values["reverse_property pairs"] > 0
    assert values["snapshot triples"] > values["FB15k-like triples"]


def test_figure4_breakdown_sums_to_100_and_shows_leakage(workbench):
    breakdown = figure4_redundancy_pie(workbench)["breakdown"]
    assert sum(breakdown.values()) == pytest.approx(100.0)
    # The dominant slices of the paper: reverse-in-train (1000) must be large.
    assert breakdown.get("1000", 0.0) > 20.0


def test_section42_leakage_shape(workbench):
    rows = {row["dataset"]: row for row in section42_leakage(workbench)["rows"]}
    assert rows[WN18]["train_reverse_share"] > rows[FB15K]["train_reverse_share"]
    assert rows[FB15K]["test_reverse_in_train_share"] > 0.4


def test_ablation_thresholds_monotone(workbench):
    rows = ablation_thresholds(workbench)["rows"]
    thetas = [row["theta"] for row in rows]
    assert thetas == sorted(thetas)
    detected = [row["duplicate_pairs"] + row["reverse_duplicate_pairs"] + row["reverse_pairs"] for row in rows]
    # Lower thresholds can only detect at least as many pairs.
    assert all(earlier >= later for earlier, later in zip(detected, detected[1:]))


# ------------------------------------------------------------------ headline drivers
def test_figure1_models_degrade_without_redundancy(workbench):
    result = figure1_overview(workbench)
    series = result["series"]
    models = list(workbench.config.models)
    fb_drops = [series[FB15K][m] - series[FB15K237][m] for m in models]
    wn_drops = [series[WN18][m] - series[WN18RR][m] for m in models]
    # R1: on average the models lose accuracy once redundancy is removed, and
    # the effect is visible for the majority of models on each dataset family.
    assert sum(fb_drops) > 0
    assert sum(wn_drops) > 0
    assert sum(1 for drop in wn_drops if drop > 0) >= len(models) - 1


def test_table5_and_table6_have_full_lineups(workbench):
    for driver, expected_datasets in (
        (table5_fb15k, {"FB15k-like", "FB15k-237-like"}),
        (table6_wn18, {"WN18-like", "WN18RR-like"}),
    ):
        rows = driver(workbench)["rows"]
        assert {row["dataset"] for row in rows} == expected_datasets
        assert {row["model"] for row in rows} == set(workbench.lineup())
        for row in rows:
            assert not math.isnan(row["FMRR"])
            assert row["FMR"] >= 1.0


def test_table11_yago_rows(workbench):
    rows = table11_yago(workbench)["rows"]
    assert {row["dataset"] for row in rows} == {"YAGO3-10-like", "YAGO3-10-like-DR"}


def test_table13_simple_model_rivals_embeddings_on_redundant_data(workbench):
    rows = {row["model"]: row for row in table13_hits1_simple_model(workbench)["rows"]}
    assert "SimpleModel" in rows
    simple = rows["SimpleModel"]
    embedding_best_wn = max(
        rows[m]["WN18-like"] for m in workbench.config.models
    )
    # A2: the statistics-based rule model is competitive on the leaky WN18.
    assert simple["WN18-like"] >= embedding_best_wn - 10.0
    # ... and collapses once the redundancy is removed.
    assert simple["WN18RR-like"] <= simple["WN18-like"]


# ------------------------------------------------------------------ Cartesian drivers
def test_table2_reports_cartesian_relations(workbench):
    result = table2_cartesian_strength(workbench)
    assert result["relations"], "expected Cartesian relations in FB15k-237-like"


def test_table3_cartesian_predictor_beats_transe_on_cartesian_relations(workbench):
    rows = table3_cartesian_predictor(workbench)["rows"]
    assert rows, "expected detected Cartesian relations with test triples"
    wins = sum(1 for row in rows if row["Cartesian(FB) FMRR"] >= row["TransE FMRR"] - 0.05)
    assert wins >= len(rows) / 2
    # Filtering against the larger Freebase-style snapshot can only help.
    for row in rows:
        assert row["Cartesian(Freebase) FMRR"] >= row["Cartesian(FB) FMRR"] - 1e-9


# ------------------------------------------------------------------ comparison drivers
def test_table7_shares_are_percentages(workbench):
    rows = table7_outperform_redundancy(workbench)["rows"]
    assert rows
    for row in rows:
        for metric in ("FMR", "FMRR"):
            value = row[metric]
            assert math.isnan(value) or 0.0 <= value <= 100.0


def test_table7_redundant_share_is_high_on_fb(workbench):
    tables = table7_outperform_redundancy(workbench)["tables"]
    fb_shares = [
        value
        for shares in tables["FB15k-like"].values()
        for value in shares.values()
        if not math.isnan(value)
    ]
    assert fb_shares
    # The paper's Table 7 reports ~78-95 %; the replica must at least show a majority.
    assert max(fb_shares) > 50.0


def test_table8_counts_cover_lineup(workbench):
    tables = table8_best_model_counts(workbench)["tables"]
    for dataset_counts in tables.values():
        for metric_counts in dataset_counts.values():
            assert set(metric_counts) == set(workbench.lineup())
            assert all(count >= 0 for count in metric_counts.values())


def test_figure5_6_win_percentages_are_valid(workbench):
    heatmaps = figure5_6_per_relation_heatmap(workbench)["heatmaps"]
    for heatmap in heatmaps.values():
        for wins in heatmap.values():
            assert all(0.0 <= value <= 100.0 for value in wins.values())
            assert max(wins.values()) > 0.0


def test_figure7_8_breakdown_uses_known_categories(workbench):
    breakdowns = figure7_8_category_breakdown(workbench)["breakdowns"]
    valid = {"1-1", "1-n", "n-1", "n-m"}
    for breakdown in breakdowns.values():
        for categories in breakdown.values():
            assert set(categories) <= valid


def test_table9_10_12_have_head_and_tail_columns(workbench):
    tables = table9_10_12_category_hits(workbench)["tables"]
    assert len(tables) == 3
    for rows in tables.values():
        for row in rows:
            head_columns = [key for key in row if key.endswith(" head")]
            tail_columns = [key for key in row if key.endswith(" tail")]
            assert head_columns and tail_columns
