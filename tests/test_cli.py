"""Tests for the command-line interface."""

import pytest

from repro.cli import GENERATED_DATASETS, build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_writes_six_datasets(tmp_path, capsys):
    exit_code = main(["generate", "--scale", "tiny", "--output", str(tmp_path / "out")])
    assert exit_code == 0
    written = {p.name for p in (tmp_path / "out").iterdir()}
    assert len(written) == 6
    assert "FB15k-like" in written and "WN18RR-like" in written
    output = capsys.readouterr().out
    assert "Datasets written" in output


def test_audit_named_dataset(capsys):
    exit_code = main(["audit", "--dataset", "wn18", "--scale", "tiny"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Redundancy summary" in output
    assert "reverse relation pairs" in output
    assert "Figure 4 style" in output


def test_audit_dataset_directory(tmp_path, capsys, toy_dataset):
    from repro.kg import save_dataset

    directory = save_dataset(toy_dataset, tmp_path / "toy")
    exit_code = main(["audit", "--dataset", str(directory)])
    assert exit_code == 0
    assert "Audit of toy" in capsys.readouterr().out


def test_audit_unknown_dataset_name_errors():
    with pytest.raises(SystemExit):
        main(["audit", "--dataset", "freebase-full"])
    assert "fb15k" in GENERATED_DATASETS


def test_ingest_subcommand_streams_audits_and_exports(tmp_path, capsys, toy_dataset):
    from repro.kg import load_dataset, save_dataset

    directory = save_dataset(toy_dataset, tmp_path / "toy")
    output = tmp_path / "out"
    exit_code = main(
        [
            "ingest",
            "--input", str(directory),
            "--chunk-size", "4",
            "--max-queue-chunks", "2",
            "--deredundify",
            "--output", str(output),
            "--progress", "--progress-every", "1",
        ]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "Ingested toy" in captured.out
    assert "Redundancy summary" in captured.out
    assert "peak resident labelled triples" in captured.out
    assert "De-redundified" in captured.out
    assert "[ingest]" in captured.err
    # the exported de-redundant dataset reloads cleanly
    exported = load_dataset(output)
    assert exported.name == "toy-deredundant"
    assert len(exported.train) <= len(toy_dataset.train)


def test_ingest_missing_directory_errors(tmp_path):
    with pytest.raises(SystemExit, match="ingest failed"):
        main(["ingest", "--input", str(tmp_path / "nope")])


def test_ingest_flags_are_parsed():
    args = build_parser().parse_args(
        ["ingest", "--input", "somewhere", "--chunk-size", "128", "--max-queue-chunks", "3", "--gzip"]
    )
    assert args.chunk_size == 128
    assert args.max_queue_chunks == 3
    assert args.gzip is True
    assert args.deredundify is False


def test_train_subcommand_runs_and_reports_metrics(capsys):
    exit_code = main(
        [
            "train",
            "--dataset", "wn18rr",
            "--model", "DistMult",
            "--scale", "tiny",
            "--dim", "8",
            "--epochs", "2",
            "--quiet",
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "trained DistMult" in output
    assert "FMRR" in output


@pytest.mark.multiprocess
def test_train_subcommand_with_sharded_evaluation(capsys, capped_workers):
    exit_code = main(
        [
            "train",
            "--dataset", "wn18rr",
            "--model", "DistMult",
            "--scale", "tiny",
            "--dim", "8",
            "--epochs", "2",
            "--eval-workers", str(capped_workers(2)),
            "--eval-shard-size", "4",
            "--quiet",
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "trained DistMult" in output
    assert "FMRR" in output


def test_train_lifecycle_flags_are_parsed():
    args = build_parser().parse_args(
        [
            "train",
            "--optimizer", "sgd",
            "--dense-updates",
            "--row-budget", "64",
            "--validate-every", "2",
            "--patience", "3",
            "--checkpoint-dir", "ckpts",
            "--checkpoint-every", "5",
            "--resume", "ckpts/checkpoint-epoch-0005.npz",
            "--verbose",
        ]
    )
    assert args.optimizer == "sgd"
    assert args.dense_updates is True
    assert args.row_budget == 64
    assert args.validate_every == 2 and args.patience == 3
    assert args.checkpoint_dir == "ckpts" and args.checkpoint_every == 5
    assert args.resume == "ckpts/checkpoint-epoch-0005.npz"
    assert args.verbose is True
    defaults = build_parser().parse_args(["train"])
    assert defaults.dense_updates is False and defaults.row_budget is None
    assert defaults.validate_every == 0 and defaults.patience == 0
    assert defaults.checkpoint_dir is None and defaults.resume is None


def test_train_subcommand_with_validation_early_stopping_and_checkpoints(tmp_path, capsys):
    checkpoint_dir = tmp_path / "ckpts"
    exit_code = main(
        [
            "train",
            "--dataset", "wn18rr",
            "--model", "DistMult",
            "--scale", "tiny",
            "--dim", "8",
            "--epochs", "4",
            "--learning-rate", "1e-12",
            "--validate-every", "1",
            "--patience", "2",
            "--checkpoint-dir", str(checkpoint_dir),
            "--checkpoint-every", "1",
            "--quiet",
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "best validation MRR" in output
    assert "(stopped early)" in output
    assert any(p.suffix == ".npz" for p in checkpoint_dir.iterdir())


def test_train_subcommand_resumes_from_checkpoint(tmp_path, capsys):
    checkpoint_dir = tmp_path / "ckpts"
    common = [
        "train",
        "--dataset", "wn18rr",
        "--model", "DistMult",
        "--scale", "tiny",
        "--dim", "8",
        "--quiet",
    ]
    assert main(common + ["--epochs", "2", "--checkpoint-dir", str(checkpoint_dir), "--checkpoint-every", "2"]) == 0
    checkpoint = checkpoint_dir / "checkpoint-epoch-0002.npz"
    assert checkpoint.exists()
    assert main(common + ["--epochs", "3", "--resume", str(checkpoint)]) == 0
    output = capsys.readouterr().out
    # The resumed run only performs the remaining epoch but reports 3 total.
    assert "3 epochs" in output


def test_eval_worker_flags_are_parsed():
    args = build_parser().parse_args(
        ["experiment", "table1", "--eval-workers", "3", "--eval-shard-size", "16"]
    )
    assert args.eval_workers == 3
    assert args.eval_shard_size == 16
    defaults = build_parser().parse_args(["train"])
    assert defaults.eval_workers == 1
    assert defaults.eval_shard_size is None


def test_experiment_subcommand_single_table(capsys):
    exit_code = main(["experiment", "table1", "--scale", "tiny", "--epochs", "2", "--dim", "8"])
    assert exit_code == 0
    assert "Table 1" in capsys.readouterr().out


def test_experiment_subcommand_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["experiment", "table99"])
