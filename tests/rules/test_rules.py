"""Tests for the AMIE-style miner, rule statistics and rule-based prediction."""

import numpy as np
import pytest

from repro.kg import TripleSet
from repro.rules import AmieConfig, AmieMiner, Atom, Rule, RuleBasedPredictor, X, Y, Z


# ------------------------------------------------------------------ rule statistics
def test_rule_quality_measures():
    rule = Rule(
        body=(Atom(0, X, Y),),
        head=Atom(1, X, Y),
        support=8,
        body_size=10,
        pca_body_size=9,
        head_size=16,
    )
    assert rule.std_confidence == pytest.approx(0.8)
    assert rule.pca_confidence == pytest.approx(8 / 9)
    assert rule.head_coverage == pytest.approx(0.5)
    assert rule.length == 1
    assert rule.is_same_direction_rule
    assert not rule.is_inverse_rule


def test_inverse_rule_classification():
    rule = Rule(
        body=(Atom(0, Y, X),), head=Atom(1, X, Y),
        support=5, body_size=5, pca_body_size=5, head_size=5,
    )
    assert rule.is_inverse_rule
    assert not rule.is_same_direction_rule
    path = Rule(
        body=(Atom(0, X, Z), Atom(1, Z, Y)), head=Atom(2, X, Y),
        support=3, body_size=4, pca_body_size=3, head_size=6,
    )
    assert not path.is_inverse_rule and not path.is_same_direction_rule
    assert path.length == 2


def test_rule_render_with_names():
    rule = Rule(
        body=(Atom(0, Y, X),), head=Atom(1, X, Y),
        support=5, body_size=5, pca_body_size=5, head_size=5,
    )
    text = rule.render(["directed_by", "director_of"])
    assert "directed_by(?y, ?x)" in text and "director_of(?x, ?y)" in text


def test_zero_denominators_do_not_crash():
    rule = Rule(body=(Atom(0, X, Y),), head=Atom(1, X, Y), support=0, body_size=0, pca_body_size=0, head_size=0)
    assert rule.std_confidence == 0.0
    assert rule.pca_confidence == 0.0
    assert rule.head_coverage == 0.0


# ------------------------------------------------------------------ mining
@pytest.fixture()
def reverse_kg() -> TripleSet:
    """Relation 1 is the exact reverse of relation 0; relation 2 is noise."""
    triples = []
    for i in range(20):
        triples.append((i, 0, i + 100))
        triples.append((i + 100, 1, i))
    triples.extend([(0, 2, 5), (1, 2, 7), (3, 2, 9)])
    return TripleSet(triples)


def test_miner_finds_inverse_rule(reverse_kg):
    report = AmieMiner(reverse_kg, AmieConfig(max_body_atoms=1)).mine()
    inverse_rules = [r for r in report.rules if r.is_inverse_rule and r.head.relation == 1]
    assert inverse_rules, "expected r0(y,x) => r1(x,y) to be mined"
    best = max(inverse_rules, key=lambda r: r.pca_confidence)
    assert best.body[0].relation == 0
    assert best.pca_confidence == pytest.approx(1.0)
    assert report.num_inverse >= 1


def test_miner_finds_symmetric_rule():
    triples = []
    for i in range(0, 20, 2):
        triples.append((i, 0, i + 1))
        triples.append((i + 1, 0, i))
    report = AmieMiner(TripleSet(triples), AmieConfig(max_body_atoms=1)).mine()
    symmetric = [
        r for r in report.rules
        if r.head.relation == 0 and r.body[0].relation == 0 and r.is_inverse_rule
    ]
    assert symmetric and symmetric[0].std_confidence == pytest.approx(1.0)


def test_miner_finds_duplicate_rule():
    triples = []
    for i in range(15):
        triples.append((i, 0, i + 50))
        triples.append((i, 1, i + 50))
    report = AmieMiner(TripleSet(triples), AmieConfig(max_body_atoms=1)).mine()
    duplicates = [r for r in report.rules if r.is_same_direction_rule]
    assert duplicates
    assert report.num_same_direction >= 2  # both directions of the implication


def test_miner_finds_path_rule():
    """lives_in(x,z) ∧ in_country(z,y) ⇒ citizen_of(x,y)."""
    triples = []
    for person in range(12):
        city = 100 + person % 4
        country = 200 + (person % 4) // 2
        triples.append((person, 0, city))       # lives_in
        triples.append((city, 1, country))      # in_country
        triples.append((person, 2, country))    # citizen_of
    report = AmieMiner(TripleSet(triples), AmieConfig()).mine()
    path_rules = [r for r in report.rules if r.length == 2 and r.head.relation == 2]
    assert path_rules
    best = max(path_rules, key=lambda r: r.pca_confidence)
    assert {atom.relation for atom in best.body} == {0, 1}
    assert best.pca_confidence > 0.9
    assert report.num_path >= 1


def test_min_support_threshold_filters_rules(reverse_kg):
    strict = AmieMiner(reverse_kg, AmieConfig(min_support=1000)).mine()
    assert len(strict.rules) == 0


def test_min_pca_confidence_filters_noise():
    triples = [(0, 0, 1), (2, 0, 3), (4, 0, 5), (0, 1, 9), (2, 1, 8)]
    report = AmieMiner(TripleSet(triples), AmieConfig(min_pca_confidence=0.99, min_support=1)).mine()
    noisy = [r for r in report.rules if r.head.relation == 1 and r.body[0].relation == 0]
    assert not noisy


# ------------------------------------------------------------------ prediction
def test_predictor_ranks_reverse_answer_first(reverse_kg):
    report = AmieMiner(reverse_kg, AmieConfig()).mine()
    predictor = RuleBasedPredictor(report.rules, reverse_kg, num_entities=130)
    # Query (105, r1, ?) — the training set contains (5, r0, 105), so the
    # inverse rule instantiates to answer 5.
    scores = predictor.score_all_tails(105, 1)
    assert scores.argmax() == 5
    head_scores = predictor.score_all_heads(0, 105)
    assert head_scores.argmax() == 5
    assert predictor.num_rules() == len(report.rules)
    assert predictor.name == "AMIE"


def test_predictor_scores_zero_without_applicable_rules(reverse_kg):
    predictor = RuleBasedPredictor([], reverse_kg, num_entities=130)
    assert predictor.score_all_tails(0, 0).sum() == 0.0


def test_predictor_pointwise_scores(reverse_kg):
    report = AmieMiner(reverse_kg, AmieConfig()).mine()
    predictor = RuleBasedPredictor(report.rules, reverse_kg, num_entities=130)
    scores = predictor.score_triples_np(np.array([105]), np.array([1]), np.array([5]))
    assert scores[0] > 0.5


def test_predictor_uses_path_rules():
    triples = []
    for person in range(12):
        city = 100 + person % 4
        country = 120 + (person % 4) // 2
        triples.append((person, 0, city))
        triples.append((city, 1, country))
        if person != 0:
            triples.append((person, 2, country))
    train = TripleSet(triples)
    report = AmieMiner(train, AmieConfig()).mine()
    predictor = RuleBasedPredictor(report.rules, train, num_entities=130)
    # Person 0 has no direct citizen_of triple; the path rule must still find it.
    scores = predictor.score_all_tails(0, 2)
    assert scores[120] > 0
