"""The rule predictor's score cache is the shared bounded LRU (satellite)."""

import pickle

import numpy as np
import pytest

from repro.kg import TripleSet
from repro.rules import AmieConfig, AmieMiner, RuleBasedPredictor
from repro.serve import ScoreCache


@pytest.fixture()
def predictor() -> RuleBasedPredictor:
    triples = []
    for i in range(20):
        triples.append((i, 0, i + 100))
        triples.append((i + 100, 1, i))
    kg = TripleSet(triples)
    report = AmieMiner(kg, AmieConfig(max_body_atoms=1)).mine()
    return RuleBasedPredictor(report.rules, kg, num_entities=130)


def test_predictor_uses_the_shared_lru_implementation(predictor):
    assert isinstance(predictor._score_cache, ScoreCache)
    assert predictor._score_cache.maxsize == RuleBasedPredictor.CACHE_ENTRIES == 512


def test_scores_are_cached_across_calls(predictor):
    heads = np.array([0, 0, 1])
    relations = np.array([0, 0, 0])
    tails = np.array([100, 101, 101])
    first = predictor.score_triples_np(heads, relations, tails)
    stats = predictor.cache_stats
    # Two distinct (h, r) queries: (0, 0) missed then hit, (1, 0) missed.
    assert stats.misses == 2 and stats.hits == 1

    second = predictor.score_triples_np(heads, relations, tails)
    after = predictor.cache_stats
    assert after.misses == 2                     # nothing recomputed
    assert after.hits == stats.hits + 3
    assert np.array_equal(first, second)


def test_cached_scores_match_uncached_scoring(predictor):
    heads = np.array([5, 5, 12])
    relations = np.array([0, 0, 1])
    tails = np.array([105, 106, 0])
    scores = predictor.score_triples_np(heads, relations, tails)
    for value, (h, r, t) in zip(scores, zip(heads, relations, tails)):
        assert value == predictor.score_all_tails(int(h), int(r))[int(t)]
    # And again, now answered from cache.
    assert np.array_equal(scores, predictor.score_triples_np(heads, relations, tails))


def test_cache_residency_is_bounded(predictor):
    predictor._score_cache.maxsize = 4           # shrink to force evictions
    heads = np.arange(10)
    predictor.score_triples_np(heads, np.zeros(10, dtype=int), np.zeros(10, dtype=int))
    assert len(predictor._score_cache) <= 4
    assert predictor.cache_stats.evictions >= 6


def test_predictor_still_pickles_for_sharded_eval(predictor):
    predictor.score_triples_np(np.array([0]), np.array([0]), np.array([100]))
    clone = pickle.loads(pickle.dumps(predictor))
    assert np.array_equal(
        clone.score_all_tails(0, 0), predictor.score_all_tails(0, 0)
    )
    assert clone.cache_stats.misses == predictor.cache_stats.misses
