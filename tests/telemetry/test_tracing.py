"""Tracing: per-thread nesting, worker absorption, and both export formats."""

from __future__ import annotations

import json
import threading

from repro.telemetry import Tracer, chrome_trace, read_trace_jsonl, write_chrome_trace
from repro.telemetry.tracing import write_trace_jsonl


def test_nested_spans_link_parent_ids():
    tracer = Tracer()
    with tracer.span("outer", stage="train"):
        with tracer.span("inner", epoch=1):
            pass
        with tracer.span("inner", epoch=2):
            pass
    records = {record["id"]: record for record in tracer.records()}
    assert len(records) == 3
    outer = next(r for r in records.values() if r["name"] == "outer")
    inners = [r for r in records.values() if r["name"] == "inner"]
    assert outer["parent_id"] is None
    assert all(r["parent_id"] == outer["id"] for r in inners)
    assert outer["attrs"] == {"stage": "train"}
    assert sorted(r["attrs"]["epoch"] for r in inners) == [1, 2]
    assert all(r["duration"] >= 0.0 for r in records.values())


def test_span_set_and_error_attribute():
    tracer = Tracer()
    try:
        with tracer.span("work") as span:
            span.set(rows=10)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    [record] = tracer.records()
    assert record["attrs"] == {"rows": 10, "error": "RuntimeError"}


def test_threads_nest_independently():
    tracer = Tracer()

    def worker():
        with tracer.span("thread-span"):
            pass

    with tracer.span("main-span"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    by_name = {record["name"]: record for record in tracer.records()}
    # The thread's span opened while main-span was live, but on another
    # thread — it must NOT be parented to it.
    assert by_name["thread-span"]["parent_id"] is None
    assert by_name["thread-span"]["tid"] != by_name["main-span"]["tid"]


def test_absorb_keeps_worker_records_verbatim():
    parent, worker = Tracer(), Tracer()
    with worker.span("eval.rank_shard", shard=0):
        pass
    [worker_record] = worker.records()
    fake = dict(worker_record, pid=99999)
    parent.absorb([fake])
    assert parent.records() == [fake]
    assert len(parent) == 1
    parent.clear()
    assert parent.records() == []


def test_trace_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("a", n=1):
        with tracer.span("b"):
            pass
    path = write_trace_jsonl(tracer.records(), tmp_path / "nested" / "run.trace.jsonl")
    assert path.exists()
    assert read_trace_jsonl(path) == tracer.records()


def test_chrome_trace_conversion(tmp_path):
    records = [
        {"name": "late", "id": 2, "parent_id": None, "pid": 7, "tid": 0,
         "start": 100.5, "duration": 0.25, "attrs": {"k": "v"}},
        {"name": "early", "id": 1, "parent_id": None, "pid": 7, "tid": 0,
         "start": 100.0, "duration": 1.0, "attrs": {}},
    ]
    converted = chrome_trace(records)
    assert converted["displayTimeUnit"] == "ms"
    events = converted["traceEvents"]
    # Sorted by (pid, tid, ts); timestamps are microseconds from the
    # earliest start.
    assert [event["name"] for event in events] == ["early", "late"]
    assert events[0]["ts"] == 0.0
    assert events[1]["ts"] == 500000.0
    assert events[1]["dur"] == 250000.0
    assert events[0]["ph"] == "X"
    assert events[1]["args"] == {"k": "v"}

    path = write_chrome_trace(records, tmp_path / "trace.json")
    assert json.loads(path.read_text()) == converted
