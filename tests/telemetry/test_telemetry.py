"""The Telemetry facade: null fast path, scoping, worker payloads, profiling,
and the shared benchmark-report writer."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    Telemetry,
    configure,
    get_telemetry,
    peak_rss_bytes,
    profile_block,
    scoped,
)
from repro.telemetry.bench import bench_main, host_info, write_bench_report


# ---------------------------------------------------------------------------- null fast path
def test_disabled_telemetry_hands_out_shared_noop_singletons():
    telemetry = Telemetry(enabled=False)
    assert telemetry.span("a") is telemetry.span("b")
    assert telemetry.counter("a") is telemetry.counter("b")
    assert telemetry.gauge("a") is telemetry.gauge("b")
    assert telemetry.histogram("a") is telemetry.histogram("b")
    # The no-ops accept the full instrument surface and record nothing.
    with telemetry.span("work", k=1) as span:
        span.set(rows=10)
    telemetry.counter("n").add(5)
    telemetry.gauge("g").set(1.0)
    telemetry.histogram("h").observe(0.5)
    assert telemetry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert telemetry.trace_records() == []


def test_enabled_telemetry_records():
    telemetry = Telemetry(enabled=True)
    with telemetry.span("work", stage="x"):
        telemetry.counter("n").add(2)
    assert telemetry.snapshot()["counters"]["n"] == 2
    [record] = telemetry.trace_records()
    assert record["name"] == "work" and record["attrs"] == {"stage": "x"}


# ---------------------------------------------------------------------------- global handle
def test_scoped_swaps_and_restores_the_global_handle():
    before = get_telemetry()
    with scoped() as fresh:
        assert get_telemetry() is fresh
        assert fresh is not before
        assert not fresh.enabled
        inner = Telemetry(enabled=True)
        with scoped(inner):
            assert get_telemetry() is inner
        assert get_telemetry() is fresh
    assert get_telemetry() is before


def test_scoped_restores_on_exception():
    before = get_telemetry()
    with pytest.raises(RuntimeError):
        with scoped():
            raise RuntimeError("boom")
    assert get_telemetry() is before


def test_configure_flips_switches_in_place():
    with scoped() as telemetry:
        assert configure(enabled=True) is telemetry
        assert telemetry.enabled and not telemetry.profile
        configure(profile=True)
        assert telemetry.profile
        configure()  # None = leave as is
        assert telemetry.enabled and telemetry.profile


# ---------------------------------------------------------------------------- worker payloads
def test_worker_payload_round_trip():
    worker = Telemetry(enabled=True)
    with worker.span("eval.rank_shard", shard=1):
        worker.counter("eval.entries").add(4)
        worker.histogram("seconds").observe(0.01)
    payload = worker.worker_payload()
    json.dumps(payload)  # must survive pickling/JSON between processes

    parent = Telemetry(enabled=True)
    parent.counter("eval.entries").add(1)
    parent.absorb_worker_payload(payload)
    parent.absorb_worker_payload(None)  # disabled workers send None
    parent.absorb_worker_payload({})
    snap = parent.snapshot()
    assert snap["counters"]["eval.entries"] == 5
    assert snap["histograms"]["seconds"]["count"] == 1
    assert [r["name"] for r in parent.trace_records()] == ["eval.rank_shard"]


# ---------------------------------------------------------------------------- profiling
def test_profile_block_reports_wall_cpu_and_rss():
    with profile_block() as report:
        sum(range(10000))
    assert report["wall_seconds"] >= 0.0
    assert report["cpu_seconds"] >= 0.0
    assert report["rss_peak_bytes"] == peak_rss_bytes()


def test_profile_block_traces_python_allocations():
    with profile_block(trace_allocations=True) as report:
        blob = [bytearray(256 * 1024) for _ in range(4)]
        del blob
    assert report["python_alloc_peak_bytes"] >= 4 * 256 * 1024


# ---------------------------------------------------------------------------- bench reports
def test_write_bench_report_stamps_host(tmp_path):
    path = write_bench_report({"benchmark": "demo", "gates": []}, tmp_path / "BENCH_demo.json")
    written = json.loads(path.read_text())
    assert written["benchmark"] == "demo"
    assert set(written["host"]) == set(host_info())
    # An explicit host section is never overwritten.
    path = write_bench_report({"host": {"python": "?"}}, tmp_path / "BENCH_host.json")
    assert json.loads(path.read_text())["host"] == {"python": "?"}


def _run_bench_main(tmp_path, passed, capsys):
    report = {
        "benchmark": "demo",
        "gates": [{"name": "gate_a", "threshold": 1.0, "value": 2.0,
                   "enforced": True, "passed": passed}],
    }
    json_path = tmp_path / "BENCH_demo.json"
    code = bench_main(
        lambda: (report, passed),
        lambda rep: print("pretty", rep["benchmark"]),
        str(json_path),
        "demo benchmark",
        argv=[],
    )
    out, err = capsys.readouterr()
    return code, json_path, out, err


def test_bench_main_success_writes_report_and_exits_zero(tmp_path, capsys):
    code, json_path, out, err = _run_bench_main(tmp_path, True, capsys)
    assert code == 0 and err == ""
    assert "pretty demo" in out and str(json_path) in out
    assert json.loads(json_path.read_text())["benchmark"] == "demo"


def test_bench_main_failing_gate_exits_one_with_names(tmp_path, capsys):
    code, json_path, out, err = _run_bench_main(tmp_path, False, capsys)
    assert code == 1
    assert "gate_a" in err
    assert json_path.exists()  # the report is written even on failure


def test_bench_main_honours_json_flag(tmp_path, capsys):
    target = tmp_path / "elsewhere.json"
    code = bench_main(
        lambda: ({"gates": []}, True),
        lambda rep: None,
        str(tmp_path / "default.json"),
        "demo",
        argv=["--json", str(target)],
    )
    assert code == 0
    assert target.exists()
    assert not (tmp_path / "default.json").exists()
