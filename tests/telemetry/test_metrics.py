"""The metrics registry: exact order-free merges, bucket percentiles, pickling.

The load-bearing property is **merge determinism**: evaluation pool workers
each snapshot their own registry and the parent folds the snapshots in
whatever order the pool returns them, so folding in *any* order must yield
bit-identical state — including the histogram sum, which is carried as an
exact ``fractions.Fraction`` precisely because IEEE float addition is not
associative.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    OCCUPANCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)


# ---------------------------------------------------------------------------- counters & gauges
def test_counter_counts_and_merges():
    registry = MetricsRegistry()
    registry.counter("eval.shards").add(3)
    registry.counter("eval.shards").add()
    assert registry.counter("eval.shards").value == 4
    registry.counter("eval.shards").merge_snapshot(10)
    assert registry.snapshot()["counters"]["eval.shards"] == 14


def test_gauge_tracks_value_and_peak():
    registry = MetricsRegistry()
    gauge = registry.gauge("ingest.queue_depth_chunks")
    gauge.set(3)
    gauge.set(7)
    gauge.set(2)
    snap = registry.snapshot()["gauges"]["ingest.queue_depth_chunks"]
    assert snap == {"value": 2.0, "max": 7.0, "updates": 3}


def test_gauge_merge_is_max_and_ignores_empty():
    merged = MetricsRegistry()
    merged.gauge("g").set(5)
    merged.gauge("g").merge_snapshot({"value": 3.0, "max": 9.0, "updates": 2})
    snap = merged.snapshot()["gauges"]["g"]
    assert snap == {"value": 5.0, "max": 9.0, "updates": 3}
    # A worker that never set the gauge must not drag the value to zero.
    merged.gauge("g").merge_snapshot({"value": 0.0, "max": 0.0, "updates": 0})
    assert merged.snapshot()["gauges"]["g"] == snap


# ---------------------------------------------------------------------------- histograms
def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2.0, 1.0))


def test_histogram_percentiles_are_bucket_upper_bounds():
    hist = Histogram("h", bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.05, 0.5, 2.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["counts"] == [2, 1, 1, 0]
    assert snap["count"] == 4
    assert snap["min"] == 0.05 and snap["max"] == 2.0
    # p50 falls in the first bucket; its upper edge 0.1 is the estimate.
    assert snap["p50"] == 0.1
    # p99 falls in the third bucket (edge 10.0), clamped to the observed max.
    assert snap["p99"] == 2.0
    assert snap["mean"] == pytest.approx(0.65)


def test_histogram_overflow_bucket_reports_observed_max():
    hist = Histogram("h", bounds=(1.0,))
    hist.observe(5.0)
    snap = hist.snapshot()
    assert snap["counts"] == [0, 1]
    assert snap["p50"] == 5.0


def test_histogram_sum_is_exact():
    hist = Histogram("h", bounds=(1.0,))
    # 0.1 + 0.2 != 0.3 in floats, but the exact fraction sum is reproducible
    # regardless of accumulation order.
    hist.observe(0.1)
    hist.observe(0.2)
    numerator, denominator = hist.snapshot()["sum_exact"]
    assert (numerator, denominator) != (3, 10)  # binary64, not decimal
    other = Histogram("h", bounds=(1.0,))
    other.observe(0.2)
    other.observe(0.1)
    assert other.snapshot()["sum_exact"] == [numerator, denominator]


def test_histogram_merge_requires_matching_bounds():
    ours = Histogram("h", bounds=DEFAULT_TIME_BUCKETS)
    theirs = Histogram("h", bounds=OCCUPANCY_BUCKETS)
    theirs.observe(0.5)
    with pytest.raises(ValueError, match="bounds differ"):
        ours.merge_snapshot(theirs.snapshot())


# ---------------------------------------------------------------------------- registry
def test_registry_creation_is_idempotent_and_kind_checked():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError, match="Counter"):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")
    assert registry.names() == ["x"]


def test_registry_snapshot_is_json_safe_and_sorted():
    registry = MetricsRegistry()
    registry.counter("b.count").add(1)
    registry.gauge("a.gauge").set(2)
    registry.histogram("c.hist", bounds=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    json.dumps(snap)  # must round-trip through JSON untouched
    assert list(snap["counters"]) == ["b.count"]
    assert list(snap["gauges"]) == ["a.gauge"]
    assert list(snap["histograms"]) == ["c.hist"]


def test_registry_merge_creates_missing_metrics():
    source = MetricsRegistry()
    source.counter("n").add(2)
    source.histogram("h", bounds=(1.0,)).observe(0.25)
    target = MetricsRegistry()
    target.merge_snapshot(source.snapshot())
    assert target.snapshot() == source.snapshot()


def test_registry_pickles_by_snapshot():
    registry = MetricsRegistry()
    registry.counter("n").add(5)
    registry.gauge("g").set(1.5)
    registry.histogram("h", bounds=(1.0, 2.0)).observe(1.25)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.snapshot() == registry.snapshot()
    clone.counter("n").add(1)  # still live after unpickling
    assert clone.snapshot()["counters"]["n"] == 6


# ---------------------------------------------------------------------------- the merge property
_OBSERVATIONS = st.lists(
    st.floats(
        min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(
    observations=_OBSERVATIONS,
    counts=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=8),
    n_workers=st.integers(min_value=1, max_value=8),
    order_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_worker_snapshots_merge_order_free(observations, counts, n_workers, order_seed):
    """Snapshots split across workers and folded in ANY order are
    bit-identical to recording everything in one registry."""
    single = MetricsRegistry()
    for count in counts:
        single.counter("events").add(count)
    for value in observations:
        single.histogram("durations").observe(value)
        single.gauge("depth").set(value)

    workers = [MetricsRegistry() for _ in range(n_workers)]
    for index, count in enumerate(counts):
        workers[index % n_workers].counter("events").add(count)
    for index, value in enumerate(observations):
        worker = workers[index % n_workers]
        worker.histogram("durations").observe(value)
        worker.gauge("depth").set(value)

    payloads = [worker.snapshot() for worker in workers]
    random.Random(order_seed).shuffle(payloads)
    merged = MetricsRegistry()
    for payload in payloads:
        merged.merge_snapshot(payload)

    merged_snap, single_snap = merged.snapshot(), single.snapshot()
    assert merged_snap["counters"] == single_snap["counters"]
    if observations:
        ours = merged_snap["histograms"]["durations"]
        reference = single_snap["histograms"]["durations"]
        # The exact-fraction carry makes even the float sum bit-identical.
        assert ours["sum_exact"] == reference["sum_exact"]
        assert ours["sum"] == reference["sum"]
        assert ours["counts"] == reference["counts"]
        assert (ours["min"], ours["max"]) == (reference["min"], reference["max"])
        assert (ours["p50"], ours["p95"], ours["p99"]) == (
            reference["p50"], reference["p95"], reference["p99"],
        )
        assert merged_snap["gauges"]["depth"]["max"] == single_snap["gauges"]["depth"]["max"]
        assert (
            merged_snap["gauges"]["depth"]["updates"]
            == single_snap["gauges"]["depth"]["updates"]
        )
