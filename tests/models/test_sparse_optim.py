"""Sparse/dense optimizer equivalence and the lazy-Adam row semantics.

The contract (see ``docs/training.md``):

* SGD and Adagrad: the sparse row update is **bit-identical** to the dense
  update — asserted here per-step on synthetic gathers and end-to-end on the
  full 10-model zoo (loss curves *and* final parameters).
* Adam: *lazy* per-row state — a touched row sees exactly the update a dense
  Adam would apply to a parameter stepped only when that row was touched.
* ``row_budget``: steps coalescing more rows than the budget densify into an
  all-rows update (for SGD exactly the dense update; for Adam it advances
  every row's lazy step count).
"""

import numpy as np
import pytest

from repro.autodiff import Parameter
from repro.models import (
    ALL_EMBEDDING_MODELS,
    Adam,
    ModelConfig,
    TrainingConfig,
    make_model,
    make_optimizer,
    train_model,
)

NUM_ROWS = 9
DIM = 4


def _run_steps(optimizer_name, sparse, steps, learning_rate=0.1, row_budget=None):
    """Apply a fixed sequence of gather gradients; return the final table."""
    rng = np.random.default_rng(11)
    parameter = Parameter(rng.normal(size=(NUM_ROWS, DIM)), sparse_updates=sparse)
    optimizer = make_optimizer(
        optimizer_name, {"table": parameter}, learning_rate, row_budget=row_budget
    )
    for indices, grad in steps:
        parameter.zero_grad()
        parameter.gather(indices).backward(grad)
        optimizer.step()
    return parameter.data.copy()


def _gather_steps(num_steps=7, seed=23):
    rng = np.random.default_rng(seed)
    steps = []
    for _ in range(num_steps):
        length = int(rng.integers(1, 12))
        steps.append(
            (rng.integers(0, NUM_ROWS, size=length), rng.normal(size=(length, DIM)))
        )
    return steps


@pytest.mark.parametrize("optimizer_name", ["sgd", "adagrad"])
def test_sgd_adagrad_sparse_updates_are_bit_identical_to_dense(optimizer_name):
    steps = _gather_steps()
    dense = _run_steps(optimizer_name, sparse=False, steps=steps)
    sparse = _run_steps(optimizer_name, sparse=True, steps=steps)
    assert np.array_equal(dense, sparse)


@pytest.mark.parametrize("optimizer_name", ["sgd", "adagrad"])
def test_row_budget_fallback_is_still_exact_for_sgd_adagrad(optimizer_name):
    steps = _gather_steps()
    dense = _run_steps(optimizer_name, sparse=False, steps=steps)
    budgeted = _run_steps(optimizer_name, sparse=True, steps=steps, row_budget=2)
    assert np.array_equal(dense, budgeted)


def test_lazy_adam_touched_row_matches_dense_adam_on_its_own_schedule():
    """A row touched at steps {1, 3, 4} equals a dense Adam stepped 3 times."""
    row_grads = [np.array([[0.3, -0.7]]), np.array([[-0.2, 0.4]]), np.array([[0.9, 0.1]])]
    start = np.array([[1.0, -2.0]])

    # Lazy run: a 5-row table where row 2 is touched at global steps 1, 3, 4
    # (other steps touch other rows).
    table = np.tile(start, (5, 1))
    lazy_param = Parameter(table.copy(), sparse_updates=True)
    lazy = Adam({"table": lazy_param}, learning_rate=0.05)
    schedule = [
        (np.array([2]), row_grads[0]),
        (np.array([0]), np.ones((1, 2))),
        (np.array([2]), row_grads[1]),
        (np.array([2]), row_grads[2]),
        (np.array([4]), np.ones((1, 2))),
    ]
    for indices, grad in schedule:
        lazy_param.zero_grad()
        lazy_param.gather(indices).backward(grad)
        lazy.step()

    # Dense reference: a 1-row parameter receiving the row's gradients at
    # consecutive steps 1, 2, 3.
    dense_param = Parameter(start.copy())
    dense = Adam({"row": dense_param}, learning_rate=0.05)
    for grad in row_grads:
        dense_param.zero_grad()
        dense_param.gather(np.array([0])).backward(grad)
        dense.step()

    assert np.array_equal(lazy_param.data[2], dense_param.data[0])
    assert lazy._row_steps["table"][2] == 3
    # Untouched rows keep their values and step counts.
    assert np.array_equal(lazy_param.data[1], start[0])
    assert lazy._row_steps["table"][1] == 0


def test_lazy_adam_with_all_rows_touched_equals_dense_adam():
    """When every step touches every row, lazy == dense exactly."""
    rng = np.random.default_rng(3)
    start = rng.normal(size=(4, 3))
    grads = [rng.normal(size=(4, 3)) for _ in range(6)]
    indices = np.arange(4)

    dense_param = Parameter(start.copy())
    dense = Adam({"t": dense_param}, learning_rate=0.02)
    lazy_param = Parameter(start.copy(), sparse_updates=True)
    lazy = Adam({"t": lazy_param}, learning_rate=0.02)
    for grad in grads:
        for parameter, optimizer in ((dense_param, dense), (lazy_param, lazy)):
            parameter.zero_grad()
            parameter.gather(indices).backward(grad)
            optimizer.step()
    assert np.allclose(dense_param.data, lazy_param.data, rtol=0, atol=0)


def test_optimizer_state_dict_roundtrip():
    steps = _gather_steps(num_steps=4)
    rng = np.random.default_rng(11)
    parameter = Parameter(rng.normal(size=(NUM_ROWS, DIM)), sparse_updates=True)
    optimizer = Adam({"table": parameter}, learning_rate=0.05)
    for indices, grad in steps:
        parameter.zero_grad()
        parameter.gather(indices).backward(grad)
        optimizer.step()
    state = {key: value.copy() for key, value in optimizer.state_dict().items()}
    assert int(state["step_count"]) == 4

    clone_param = Parameter(parameter.data.copy(), sparse_updates=True)
    clone = Adam({"table": clone_param}, learning_rate=0.05)
    clone.load_state_dict(state)
    assert clone._step_count == 4
    assert np.array_equal(clone._row_steps["table"], optimizer._row_steps["table"])

    # Both continue identically from the restored state.
    extra = _gather_steps(num_steps=2, seed=99)
    for indices, grad in extra:
        for p, opt in ((parameter, optimizer), (clone_param, clone)):
            p.zero_grad()
            p.gather(indices).backward(grad)
            opt.step()
    assert np.array_equal(parameter.data, clone_param.data)


@pytest.mark.parametrize("optimizer_name", ["sgd", "adagrad"])
@pytest.mark.parametrize("model_name", ALL_EMBEDDING_MODELS)
def test_sparse_training_is_bit_identical_to_dense_for_all_models(
    model_name, optimizer_name, toy_dataset
):
    """Acceptance: sparse loss curves + parameters == dense, all 10 models."""
    extra = {"embedding_height": 4} if model_name == "ConvE" else {}
    dim = 16 if model_name == "ConvE" else 8
    curves, finals = [], []
    for sparse in (True, False):
        model = make_model(
            model_name,
            toy_dataset.num_entities,
            toy_dataset.num_relations,
            ModelConfig(dim=dim, seed=3, extra=extra),
        )
        result = train_model(
            model,
            toy_dataset,
            TrainingConfig(
                epochs=3,
                batch_size=4,
                num_negatives=2,
                seed=3,
                optimizer=optimizer_name,
                sparse_updates=sparse,
            ),
        )
        curves.append(result.epoch_losses)
        finals.append({name: p.data.copy() for name, p in model.parameters().items()})
    assert np.array_equal(curves[0], curves[1])
    for name in finals[0]:
        assert np.array_equal(finals[0][name], finals[1][name]), name


def test_lazy_adam_trains_the_zoo_without_nans(toy_dataset):
    """The default engine (sparse + adam) stays finite across the model zoo."""
    for model_name in ("TransE", "DistMult", "RotatE"):
        model = make_model(
            model_name,
            toy_dataset.num_entities,
            toy_dataset.num_relations,
            ModelConfig(dim=8, seed=1),
        )
        result = train_model(
            model, toy_dataset, TrainingConfig(epochs=3, batch_size=4, seed=1)
        )
        assert np.all(np.isfinite(result.epoch_losses))
