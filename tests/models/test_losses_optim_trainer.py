"""Tests for losses, optimizers and the shared training loop."""

import numpy as np
import pytest

from repro.autodiff import Parameter, Tensor
from repro.eval import evaluate_model
from repro.models import (
    Adagrad,
    Adam,
    LogisticLoss,
    MarginRankingLoss,
    ModelConfig,
    SGD,
    SelfAdversarialLoss,
    Trainer,
    TrainingConfig,
    make_loss,
    make_model,
    make_optimizer,
    train_model,
)

# ------------------------------------------------------------------ losses
def test_make_loss_factory():
    assert isinstance(make_loss("margin"), MarginRankingLoss)
    assert isinstance(make_loss("bce"), LogisticLoss)
    assert isinstance(make_loss("self_adversarial"), SelfAdversarialLoss)
    with pytest.raises(ValueError):
        make_loss("hinge-of-doom")


def test_margin_loss_pairs_negatives_with_their_positive():
    loss_fn = MarginRankingLoss(margin=1.0)
    positives = Tensor(np.array([5.0, 0.0]), requires_grad=True)
    negatives = Tensor(np.array([0.0, 0.0, 0.0, 0.0]), requires_grad=True)
    positive_index = np.array([0, 0, 1, 1])
    loss = loss_fn(positives, negatives, positive_index)
    # Pairs with the strong positive contribute 0, the weak positive contributes 1.
    assert loss.item() == pytest.approx(0.5)


def test_logistic_loss_decreases_with_better_separation():
    loss_fn = LogisticLoss()
    index = np.array([0, 1])
    bad = loss_fn(
        Tensor(np.array([0.0, 0.0]), requires_grad=True),
        Tensor(np.array([0.0, 0.0]), requires_grad=True),
        index,
    )
    good = loss_fn(
        Tensor(np.array([5.0, 5.0]), requires_grad=True),
        Tensor(np.array([-5.0, -5.0]), requires_grad=True),
        index,
    )
    assert good.item() < bad.item()


def test_self_adversarial_loss_weights_sum_to_one_per_group():
    loss_fn = SelfAdversarialLoss(margin=2.0)
    positives = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    negatives = Tensor(np.array([0.5, -0.5, 1.0, 0.0]), requires_grad=True)
    index = np.array([0, 0, 1, 1])
    loss = loss_fn(positives, negatives, index)
    assert np.isfinite(loss.item())
    loss.backward()  # must not raise


# ------------------------------------------------------------------ optimizers
def _quadratic_parameter():
    return {"w": Parameter(np.array([5.0, -3.0]))}


@pytest.mark.parametrize("name,learning_rate", [("sgd", 0.3), ("adagrad", 2.0), ("adam", 0.3)])
def test_optimizers_minimize_a_quadratic(name, learning_rate):
    parameters = _quadratic_parameter()
    optimizer = make_optimizer(name, parameters, learning_rate=learning_rate)
    for _ in range(400):
        optimizer.zero_grad()
        loss = (parameters["w"] * parameters["w"]).sum()
        loss.backward()
        optimizer.step()
    np.testing.assert_allclose(parameters["w"].data, [0.0, 0.0], atol=0.1)


def test_make_optimizer_rejects_unknown():
    with pytest.raises(ValueError):
        make_optimizer("lion", _quadratic_parameter(), 0.1)
    with pytest.raises(ValueError):
        SGD(_quadratic_parameter(), learning_rate=0.0)


def test_optimizer_skips_parameters_without_gradients():
    parameters = {"used": Parameter(np.ones(2)), "unused": Parameter(np.ones(2))}
    optimizer = Adam(parameters, learning_rate=0.1)
    (parameters["used"] * 2).sum().backward()
    optimizer.step()
    np.testing.assert_allclose(parameters["unused"].data, np.ones(2))
    assert not np.allclose(parameters["used"].data, np.ones(2))


def test_adagrad_accumulates_squared_gradients():
    parameters = {"w": Parameter(np.array([1.0]))}
    optimizer = Adagrad(parameters, learning_rate=1.0)
    (parameters["w"] * 2).sum().backward()
    optimizer.step()
    first_step = 1.0 - parameters["w"].data[0]
    parameters["w"].zero_grad()
    (parameters["w"] * 2).sum().backward()
    before = parameters["w"].data[0]
    optimizer.step()
    second_step = before - parameters["w"].data[0]
    assert second_step < first_step  # effective learning rate shrinks


# ------------------------------------------------------------------ trainer
def test_training_reduces_loss_and_beats_untrained(toy_dataset):
    config = ModelConfig(dim=16, seed=0)
    untrained = make_model("DistMult", toy_dataset.num_entities, toy_dataset.num_relations, config)
    untrained_result = evaluate_model(untrained, toy_dataset)

    trained = make_model("DistMult", toy_dataset.num_entities, toy_dataset.num_relations, config)
    result = train_model(
        trained,
        toy_dataset,
        TrainingConfig(epochs=80, batch_size=8, num_negatives=4, learning_rate=0.05, seed=0),
    )
    assert result.epochs_run == 80
    assert result.final_loss < result.epoch_losses[0]
    trained_result = evaluate_model(trained, toy_dataset)
    assert (
        trained_result.filtered_metrics().mean_reciprocal_rank
        >= untrained_result.filtered_metrics().mean_reciprocal_rank
    )


def test_trainer_respects_loss_override(toy_dataset):
    model = make_model("TransE", toy_dataset.num_entities, toy_dataset.num_relations, ModelConfig(dim=8))
    trainer = Trainer(model, toy_dataset, TrainingConfig(epochs=1, loss="bce"))
    assert isinstance(trainer.loss_fn, LogisticLoss)
    trainer = Trainer(model, toy_dataset, TrainingConfig(epochs=1))
    assert isinstance(trainer.loss_fn, MarginRankingLoss)


def test_trainer_uniform_sampler_option(toy_dataset):
    model = make_model("TransE", toy_dataset.num_entities, toy_dataset.num_relations, ModelConfig(dim=8))
    trainer = Trainer(model, toy_dataset, TrainingConfig(epochs=2, sampler="uniform"))
    result = trainer.train()
    assert result.epochs_run == 2
    assert result.seconds > 0
    assert model.training is False  # trainer leaves the model in eval mode


def test_training_is_reproducible(toy_dataset):
    losses = []
    for _ in range(2):
        model = make_model(
            "DistMult", toy_dataset.num_entities, toy_dataset.num_relations, ModelConfig(dim=8, seed=3)
        )
        result = train_model(model, toy_dataset, TrainingConfig(epochs=5, seed=3))
        losses.append(result.epoch_losses)
    np.testing.assert_allclose(losses[0], losses[1])
