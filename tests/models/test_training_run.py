"""Lifecycle tests for :class:`~repro.models.trainer.TrainingRun`.

Covers the callback protocol, periodic validation + patience-based early
stopping, the NaN-loss abort, determinism (bit-identical repeat runs), the
touched-rows constraint contract, and bit-identical checkpoint resume
(parameters, optimizer state — including Adam's step counts — and all RNG
streams).
"""

import logging

import numpy as np
import pytest

from repro.models import (
    ModelConfig,
    NaNLossError,
    TrainingCallback,
    TrainingConfig,
    TrainingRun,
    make_model,
    train_model,
)


def _make(model_name, dataset, dim=8, seed=3, **extra_config):
    extra = {"embedding_height": 4} if model_name == "ConvE" else {}
    if model_name == "ConvE":
        dim = 16  # the 4x4 reshape needs width >= the 3x3 kernel
    model = make_model(
        model_name, dataset.num_entities, dataset.num_relations,
        ModelConfig(dim=dim, seed=seed, extra=extra),
    )
    config = TrainingConfig(epochs=4, batch_size=4, num_negatives=2, seed=seed, **extra_config)
    return model, config


# ------------------------------------------------------------------ determinism
def test_same_seed_runs_are_bit_identical(toy_dataset):
    """Regression: equal configs => equal loss curves AND equal parameters."""
    curves, finals = [], []
    for _ in range(2):
        model, config = _make("DistMult", toy_dataset)
        result = train_model(model, toy_dataset, config)
        curves.append(result.epoch_losses)
        finals.append({name: p.data.copy() for name, p in model.parameters().items()})
    assert np.array_equal(curves[0], curves[1])
    for name in finals[0]:
        assert np.array_equal(finals[0][name], finals[1][name]), name


# ------------------------------------------------------------------ callbacks
class _Recorder(TrainingCallback):
    def __init__(self):
        self.epoch_begins = []
        self.epoch_ends = []
        self.batch_ends = 0
        self.validations = []

    def on_epoch_begin(self, run, epoch):
        self.epoch_begins.append(epoch)

    def on_batch_end(self, run, epoch, batch_index, loss):
        self.batch_ends += 1
        assert np.isfinite(loss)

    def on_epoch_end(self, run, epoch, mean_loss):
        self.epoch_ends.append((epoch, mean_loss))

    def on_validation(self, run, epoch, mrr):
        self.validations.append((epoch, mrr))


def test_callbacks_see_every_lifecycle_event(toy_dataset):
    model, config = _make("DistMult", toy_dataset, validate_every=2)
    recorder = _Recorder()
    result = TrainingRun(model, toy_dataset, config, callbacks=[recorder]).train()
    assert recorder.epoch_begins == [0, 1, 2, 3]
    assert [epoch for epoch, _ in recorder.epoch_ends] == [0, 1, 2, 3]
    batches_per_epoch = -(-len(toy_dataset.train) // config.batch_size)
    assert recorder.batch_ends == 4 * batches_per_epoch
    assert [epoch for epoch, _ in recorder.validations] == [1, 3]
    assert [mrr for _, mrr in recorder.validations] == result.validation_mrrs
    assert result.validation_epochs == [2, 4]


class _StopAfterFirstEpoch(TrainingCallback):
    def on_epoch_end(self, run, epoch, mean_loss):
        run.request_stop()


def test_callback_can_request_stop(toy_dataset):
    model, config = _make("DistMult", toy_dataset)
    result = TrainingRun(model, toy_dataset, config, callbacks=[_StopAfterFirstEpoch()]).train()
    assert result.epochs_run == 1
    assert model.training is False


# ------------------------------------------------------------------ validation / early stopping
def test_early_stopping_on_stale_validation(toy_dataset):
    """With a vanishing learning rate the MRR never improves => patience fires."""
    model, config = _make(
        "DistMult",
        toy_dataset,
        learning_rate=1e-12,
        validate_every=1,
        patience=2,
    )
    config.epochs = 50
    result = TrainingRun(model, toy_dataset, config).train()
    assert result.stopped_early is True
    # First validation sets the best, the next two are stale.
    assert result.epochs_run == 3
    assert result.best_epoch == 1
    assert result.validation_epochs == [1, 2, 3]
    assert result.best_validation_mrr == pytest.approx(result.validation_mrrs[0])


def test_validation_skipped_on_empty_valid_split(toy_dataset, caplog):
    from repro.kg import Dataset, TripleSet

    no_valid = Dataset(
        name="toy-novalid",
        vocab=toy_dataset.vocab,
        train=toy_dataset.train,
        valid=TripleSet(),
        test=toy_dataset.test,
    )
    model, config = _make("DistMult", no_valid, validate_every=1)
    config.epochs = 2
    with caplog.at_level(logging.WARNING, logger="repro.training"):
        result = TrainingRun(model, no_valid, config).train()
    assert result.validation_mrrs == []
    assert any("empty validation split" in message for message in caplog.messages)


# ------------------------------------------------------------------ NaN abort
@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # nan flows through softplus
def test_nan_loss_aborts_with_context(toy_dataset):
    model, config = _make("DistMult", toy_dataset)
    model.parameters()["entity"].data[:] = np.nan
    run = TrainingRun(model, toy_dataset, config)
    with pytest.raises(NaNLossError, match=r"epoch 1, batch 1"):
        run.train()


# ------------------------------------------------------------------ logging
def test_epoch_progress_goes_through_logging_not_print(toy_dataset, caplog, capsys):
    model, config = _make("DistMult", toy_dataset, verbose=True, log_every=1)
    with caplog.at_level(logging.INFO, logger="repro.training"):
        TrainingRun(model, toy_dataset, config).train()
    assert any("epoch 1/4" in message for message in caplog.messages)
    assert capsys.readouterr().out == ""  # nothing printed to stdout


# ------------------------------------------------------------------ constraints
def test_touched_rows_constraints_only_normalize_touched_rows(toy_dataset):
    model = make_model(
        "TransE", toy_dataset.num_entities, toy_dataset.num_relations, ModelConfig(dim=8, seed=0)
    )
    entity = model.parameters()["entity"].data
    entity[:] = 5.0  # every row far outside the unit ball
    model.apply_constraints(touched_entities=np.array([1, 3]))
    norms = np.linalg.norm(entity, axis=1)
    assert norms[1] == pytest.approx(1.0)
    assert norms[3] == pytest.approx(1.0)
    untouched = np.delete(np.arange(len(entity)), [1, 3])
    assert np.all(norms[untouched] > 1.0)
    # The all-rows behaviour is preserved for direct calls.
    model.apply_constraints()
    assert np.all(np.linalg.norm(entity, axis=1) <= 1.0 + 1e-9)


@pytest.mark.parametrize("optimizer", ["adam", "sgd"])
@pytest.mark.parametrize("sparse", [True, False])
def test_entity_norms_stay_bounded_after_training(toy_dataset, optimizer, sparse):
    """Every row an optimizer step can move must be re-normalized.

    Regression: dense Adam moves rows outside the batch through momentum
    decay, so touched-rows-only constraints would leave norms > 1; the
    trainer must fall back to an all-rows pass for non-row-bounded steps.
    """
    model, config = _make("TransE", toy_dataset, optimizer=optimizer, sparse_updates=sparse)
    entity = model.parameters()["entity"].data
    entity *= 3.0  # start far outside the unit ball
    train_model(model, toy_dataset, config)
    touched = np.unique(toy_dataset.train.to_array()[:, [0, 2]])
    norms = np.linalg.norm(entity, axis=1)
    # Rows that appear in training batches are normalized in every mode; for
    # configurations whose steps move further rows (dense Adam), all rows are.
    assert np.all(norms[touched] <= 1.0 + 1e-9)
    if optimizer == "adam" and not sparse:
        assert np.all(norms <= 1.0 + 1e-9)


def test_rotate_constraint_wraps_only_touched_relations():
    from repro.models import RotatE

    model = RotatE(4, 3, ModelConfig(dim=4, seed=0))
    model.parameters()["phase"].data[:] = 10.0
    model.apply_constraints(touched_relations=np.array([1]))
    phase = model.parameters()["phase"].data
    assert np.all(np.abs(phase[1]) <= np.pi)
    assert np.all(phase[0] == 10.0) and np.all(phase[2] == 10.0)


# ------------------------------------------------------------------ checkpoint / resume
@pytest.mark.parametrize(
    "model_name,optimizer", [("TransE", "sgd"), ("DistMult", "adagrad"), ("ConvE", "adam")]
)
def test_checkpoint_resume_is_bit_identical(toy_dataset, tmp_path, model_name, optimizer):
    """Save at epoch 3, resume in a fresh run, match the uninterrupted run."""
    total_epochs = 6

    def fresh():
        model, config = _make(model_name, toy_dataset, optimizer=optimizer)
        config.epochs = total_epochs
        return model, config

    # Uninterrupted reference.
    model_a, config_a = fresh()
    result_a = TrainingRun(model_a, toy_dataset, config_a).train()

    # Interrupted: 3 epochs, checkpoint, then a brand-new run resumes.
    model_b, config_b = fresh()
    config_b.epochs = 3
    first_leg = TrainingRun(model_b, toy_dataset, config_b)
    first_leg.train()
    checkpoint = first_leg.save_checkpoint(tmp_path / "ckpt.npz")

    model_c, config_c = fresh()
    second_leg = TrainingRun(model_c, toy_dataset, config_c)
    second_leg.restore(checkpoint)
    assert second_leg.epoch == 3
    result_c = second_leg.train()

    assert np.array_equal(result_a.epoch_losses, result_c.epoch_losses)
    for name, parameter in model_a.parameters().items():
        assert np.array_equal(parameter.data, model_c.parameters()[name].data), name


def test_adam_step_count_survives_resume(toy_dataset, tmp_path):
    model, config = _make("DistMult", toy_dataset, optimizer="adam")
    config.epochs = 2
    run = TrainingRun(model, toy_dataset, config)
    run.train()
    steps_taken = run.optimizer._step_count
    assert steps_taken > 0
    checkpoint = run.save_checkpoint(tmp_path / "adam.npz")

    model2, config2 = _make("DistMult", toy_dataset, optimizer="adam")
    resumed = TrainingRun(model2, toy_dataset, config2)
    assert resumed.optimizer._step_count == 0
    resumed.restore(checkpoint)
    assert resumed.optimizer._step_count == steps_taken


def test_periodic_checkpoints_written_by_the_loop(toy_dataset, tmp_path):
    model, config = _make(
        "DistMult",
        toy_dataset,
        checkpoint_dir=str(tmp_path / "ckpts"),
        checkpoint_every=2,
    )
    TrainingRun(model, toy_dataset, config).train()
    written = sorted(p.name for p in (tmp_path / "ckpts").iterdir())
    assert written == ["checkpoint-epoch-0002.npz", "checkpoint-epoch-0004.npz"]


def test_restore_rejects_mismatched_model(toy_dataset, tmp_path):
    model, config = _make("DistMult", toy_dataset)
    run = TrainingRun(model, toy_dataset, config)
    run.train()
    checkpoint = run.save_checkpoint(tmp_path / "d.npz")

    other_model, other_config = _make("TransE", toy_dataset)
    with pytest.raises(ValueError, match="written for model"):
        TrainingRun(other_model, toy_dataset, other_config).restore(checkpoint)


# ------------------------------------------------------------------ restore_best
class _ParamSnapshots(TrainingCallback):
    """Record a full parameter snapshot at every validation pass."""

    def __init__(self):
        self.snapshots = {}

    def on_validation(self, run, epoch, mrr):
        self.snapshots[epoch + 1] = {
            name: p.data.copy() for name, p in run.model.parameters().items()
        }


def test_restore_best_reloads_best_epoch_parameters(toy_dataset):
    """With restore_best the final parameters are the best epoch's, not the last."""
    snapshots = _ParamSnapshots()
    model, config = _make(
        "DistMult", toy_dataset, learning_rate=1e-12, validate_every=1, restore_best=True
    )
    result = TrainingRun(model, toy_dataset, config, callbacks=[snapshots]).train()
    # A vanishing learning rate keeps the MRR flat, so the strictly-better
    # rule pins the best at the first validation.
    assert result.best_epoch == 1
    assert result.restored_best is True
    best = snapshots.snapshots[result.best_epoch]
    last = snapshots.snapshots[max(snapshots.snapshots)]
    for name, parameter in model.parameters().items():
        assert np.array_equal(parameter.data, best[name]), name
    # ... and the best genuinely differs from the last epoch's parameters.
    assert any(
        not np.array_equal(best[name], last[name]) for name in best
    )


def test_restore_best_off_keeps_last_epoch_parameters(toy_dataset):
    snapshots = _ParamSnapshots()
    model, config = _make("DistMult", toy_dataset, learning_rate=1e-12, validate_every=1)
    result = TrainingRun(model, toy_dataset, config, callbacks=[snapshots]).train()
    assert result.restored_best is False
    last = snapshots.snapshots[max(snapshots.snapshots)]
    for name, parameter in model.parameters().items():
        assert np.array_equal(parameter.data, last[name]), name


def test_restore_best_resume_is_bit_identical(toy_dataset, tmp_path):
    """The best-parameter snapshot rides along in checkpoints."""
    total_epochs = 6

    def fresh():
        model, config = _make(
            "DistMult", toy_dataset, learning_rate=1e-12, validate_every=1,
            restore_best=True,
        )
        config.epochs = total_epochs
        return model, config

    model_a, config_a = fresh()
    result_a = TrainingRun(model_a, toy_dataset, config_a).train()
    assert result_a.restored_best is True

    model_b, config_b = fresh()
    config_b.epochs = 3
    first_leg = TrainingRun(model_b, toy_dataset, config_b)
    first_leg.train()
    checkpoint = first_leg.save_checkpoint(tmp_path / "best.npz")

    model_c, config_c = fresh()
    second_leg = TrainingRun(model_c, toy_dataset, config_c)
    second_leg.restore(checkpoint)
    result_c = second_leg.train()

    assert result_c.best_epoch == result_a.best_epoch
    for name, parameter in model_a.parameters().items():
        assert np.array_equal(parameter.data, model_c.parameters()[name].data), name


def test_restore_best_without_validation_warns_and_is_inert(toy_dataset, caplog):
    model, config = _make("DistMult", toy_dataset, restore_best=True)
    with caplog.at_level(logging.WARNING, logger="repro.training"):
        result = TrainingRun(model, toy_dataset, config).train()
    assert result.restored_best is False
    assert any("restore_best" in message for message in caplog.messages)


def test_resume_with_validation_state_continues_early_stopping(toy_dataset, tmp_path):
    """Early-stop bookkeeping (best MRR, staleness) survives the checkpoint."""
    model, config = _make(
        "DistMult", toy_dataset, learning_rate=1e-12, validate_every=1, patience=2
    )
    config.epochs = 2
    run = TrainingRun(model, toy_dataset, config)
    run.train()  # 2 epochs: best at epoch 1, one stale check
    checkpoint = run.save_checkpoint(tmp_path / "val.npz")

    model2, config2 = _make(
        "DistMult", toy_dataset, learning_rate=1e-12, validate_every=1, patience=2
    )
    config2.epochs = 50
    resumed = TrainingRun(model2, toy_dataset, config2)
    resumed.restore(checkpoint)
    result = resumed.train()
    # One more stale validation (epoch 3) exhausts the patience of 2.
    assert result.stopped_early is True
    assert result.epochs_run == 3
    assert result.best_epoch == 1
