"""Model-zoo tests: every embedding model satisfies the shared contract."""

import numpy as np
import pytest

from repro.models import (
    ALL_EMBEDDING_MODELS,
    ModelConfig,
    UnknownModelError,
    make_model,
    resolve_model_class,
)

NUM_ENTITIES = 30
NUM_RELATIONS = 5


def build(name: str, dim: int = 16, seed: int = 0):
    extra = {"embedding_height": 4} if name == "ConvE" else {}
    model = make_model(
        name, NUM_ENTITIES, NUM_RELATIONS, ModelConfig(dim=dim, seed=seed, extra=extra)
    )
    # Scoring-contract tests compare repeated forward passes, so stochastic
    # regularization (ConvE's dropout) is disabled; the trainer re-enables it.
    model.train_mode(False)
    return model


@pytest.fixture(params=ALL_EMBEDDING_MODELS)
def model(request):
    return build(request.param)


def test_registry_rejects_unknown_models():
    with pytest.raises(UnknownModelError):
        resolve_model_class("HolE")


def test_registry_is_case_insensitive():
    assert resolve_model_class("transe").__name__ == "TransE"
    assert resolve_model_class("TUCKER").__name__ == "TuckER"


def test_model_rejects_empty_graph():
    with pytest.raises(ValueError):
        build_cls = resolve_model_class("TransE")
        build_cls(0, 3, ModelConfig())


def test_score_triples_shape_and_type(model):
    heads = np.array([0, 1, 2, 3])
    relations = np.array([0, 1, 2, 0])
    tails = np.array([4, 5, 6, 7])
    scores = model.score_triples(heads, relations, tails)
    assert scores.shape == (4,)
    np.testing.assert_allclose(scores.data, model.score_triples_np(heads, relations, tails))


def test_scores_are_deterministic(model):
    heads = np.array([1, 2])
    relations = np.array([0, 1])
    tails = np.array([3, 4])
    was_training = model.training
    model.train_mode(False)
    first = model.score_triples_np(heads, relations, tails)
    second = model.score_triples_np(heads, relations, tails)
    model.train_mode(was_training)
    np.testing.assert_allclose(first, second)


def test_same_seed_same_scores():
    for name in ALL_EMBEDDING_MODELS:
        a = build(name, seed=7)
        b = build(name, seed=7)
        a.train_mode(False)
        b.train_mode(False)
        heads, relations, tails = np.array([0, 1]), np.array([0, 1]), np.array([2, 3])
        np.testing.assert_allclose(
            a.score_triples_np(heads, relations, tails),
            b.score_triples_np(heads, relations, tails),
        )


def test_score_all_tails_matches_pointwise_scores(model):
    model.train_mode(False)
    head, relation = 2, 1
    all_scores = model.score_all_tails(head, relation)
    assert all_scores.shape == (NUM_ENTITIES,)
    candidates = np.arange(NUM_ENTITIES)
    pointwise = model.score_triples_np(
        np.full(NUM_ENTITIES, head), np.full(NUM_ENTITIES, relation), candidates
    )
    np.testing.assert_allclose(all_scores, pointwise, atol=1e-8)


def test_score_all_heads_matches_pointwise_scores(model):
    model.train_mode(False)
    relation, tail = 2, 5
    all_scores = model.score_all_heads(relation, tail)
    candidates = np.arange(NUM_ENTITIES)
    pointwise = model.score_triples_np(
        candidates, np.full(NUM_ENTITIES, relation), np.full(NUM_ENTITIES, tail)
    )
    np.testing.assert_allclose(all_scores, pointwise, atol=1e-8)


def test_gradients_reach_every_parameter(model):
    """One backward pass must populate a gradient for every registered parameter."""
    heads = np.arange(8) % NUM_ENTITIES
    relations = np.arange(8) % NUM_RELATIONS
    tails = (np.arange(8) + 3) % NUM_ENTITIES
    scores = model.score_triples(heads, relations, tails)
    (scores ** 2).sum().backward()
    missing = [
        name
        for name, parameter in model.parameters().items()
        if parameter.grad is None or not np.any(parameter.grad)
    ]
    # Entity-bias style parameters may legitimately receive a zero gradient on
    # particular batches, but no parameter may be disconnected from the graph.
    disconnected = [
        name for name, parameter in model.parameters().items() if parameter.grad is None
    ]
    assert not disconnected, f"parameters disconnected from the graph: {disconnected}"
    assert len(missing) <= 1, f"parameters with all-zero gradients: {missing}"


def test_zero_grad_clears_gradients(model):
    heads, relations, tails = np.array([0]), np.array([0]), np.array([1])
    model.score_triples(heads, relations, tails).sum().backward()
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters().values())


def test_apply_constraints_keeps_entity_norms_bounded():
    model = build("TransE")
    model.parameters()["entity"].data *= 100.0
    model.apply_constraints()
    norms = np.linalg.norm(model.parameters()["entity"].data, axis=1)
    assert np.all(norms <= 1.0 + 1e-9)


def test_rotate_constraint_wraps_phases():
    model = build("RotatE")
    model.parameters()["phase"].data[:] = 10.0
    model.apply_constraints()
    phases = model.parameters()["phase"].data
    assert np.all(phases <= np.pi) and np.all(phases >= -np.pi)


def test_num_parameters_positive(model):
    assert model.num_parameters() > 0
    assert model.name in ALL_EMBEDDING_MODELS


def test_conve_rejects_inconsistent_reshape():
    with pytest.raises(ValueError):
        make_model(
            "ConvE",
            NUM_ENTITIES,
            NUM_RELATIONS,
            ModelConfig(dim=16, extra={"embedding_height": 5}),
        )


def test_distmult_is_symmetric_complex_is_not():
    distmult = build("DistMult")
    complex_model = build("ComplEx")
    heads, relations, tails = np.array([1]), np.array([2]), np.array([4])
    forward = distmult.score_triples_np(heads, relations, tails)
    backward = distmult.score_triples_np(tails, relations, heads)
    np.testing.assert_allclose(forward, backward)
    forward_c = complex_model.score_triples_np(heads, relations, tails)
    backward_c = complex_model.score_triples_np(tails, relations, heads)
    assert not np.allclose(forward_c, backward_c)


def test_translational_scores_are_nonpositive():
    """Distance-based scores are negated distances, hence never positive."""
    for name in ("TransE", "TransH", "TransR", "TransD", "RotatE"):
        model = build(name)
        heads = np.arange(10) % NUM_ENTITIES
        relations = np.arange(10) % NUM_RELATIONS
        tails = (np.arange(10) + 1) % NUM_ENTITIES
        scores = model.score_triples_np(heads, relations, tails)
        assert np.all(scores <= 1e-9)
