"""Weight decay in the sparse training engine (satellite: O(batch) L2).

The contract: weight decay is folded into the gradient *before* the update
rule, so a sparse step regularizes exactly the rows the batch touched — an
O(batch) cost with lazy-decay semantics — and whenever every row is touched
the sparse decayed update is **bit-identical** to the dense decayed update.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Parameter
from repro.models import (
    ModelConfig,
    TrainingConfig,
    make_model,
    make_optimizer,
    train_model,
)

NUM_ROWS = 9
DIM = 4
WD = 0.03


def _run_steps(optimizer_name, sparse, steps, weight_decay, learning_rate=0.1):
    rng = np.random.default_rng(11)
    parameter = Parameter(rng.normal(size=(NUM_ROWS, DIM)), sparse_updates=sparse)
    optimizer = make_optimizer(
        optimizer_name, {"table": parameter}, learning_rate, weight_decay=weight_decay
    )
    for indices, grad in steps:
        parameter.zero_grad()
        parameter.gather(indices).backward(grad)
        optimizer.step()
    return parameter.data.copy()


def _all_rows_steps(num_steps=6, seed=23):
    rng = np.random.default_rng(seed)
    indices = np.arange(NUM_ROWS)
    return [(indices, rng.normal(size=(NUM_ROWS, DIM))) for _ in range(num_steps)]


def _partial_steps(num_steps=7, seed=29):
    rng = np.random.default_rng(seed)
    steps = []
    for _ in range(num_steps):
        length = int(rng.integers(1, 6))
        steps.append(
            (rng.integers(0, NUM_ROWS, size=length), rng.normal(size=(length, DIM)))
        )
    return steps


# ---------------------------------------------------------------------------- equivalence
@pytest.mark.parametrize("optimizer_name", ["sgd", "adagrad", "adam"])
def test_decayed_sparse_equals_decayed_dense_when_all_rows_touched(optimizer_name):
    steps = _all_rows_steps()
    dense = _run_steps(optimizer_name, sparse=False, steps=steps, weight_decay=WD)
    sparse = _run_steps(optimizer_name, sparse=True, steps=steps, weight_decay=WD)
    assert np.array_equal(dense, sparse)


@pytest.mark.parametrize("optimizer_name", ["sgd", "adagrad"])
def test_zero_decay_is_the_undecayed_update(optimizer_name):
    steps = _partial_steps()
    undecayed = _run_steps(optimizer_name, sparse=True, steps=steps, weight_decay=0.0)
    reference_rng = np.random.default_rng(11)
    reference = Parameter(
        reference_rng.normal(size=(NUM_ROWS, DIM)), sparse_updates=True
    )
    optimizer = make_optimizer(optimizer_name, {"table": reference}, 0.1)
    for indices, grad in steps:
        reference.zero_grad()
        reference.gather(indices).backward(grad)
        optimizer.step()
    assert np.array_equal(undecayed, reference.data)


# ---------------------------------------------------------------------------- O(batch) semantics
def test_sparse_decay_touches_only_the_batch_rows():
    rng = np.random.default_rng(5)
    start = rng.normal(size=(NUM_ROWS, DIM))
    parameter = Parameter(start.copy(), sparse_updates=True)
    optimizer = make_optimizer("sgd", {"table": parameter}, 0.1, weight_decay=WD)
    touched = np.array([1, 4, 4])
    parameter.zero_grad()
    parameter.gather(touched).backward(np.zeros((3, DIM)))
    optimizer.step()
    untouched = np.setdiff1d(np.arange(NUM_ROWS), touched)
    # Untouched rows see no decay at all — lazy-decay semantics.
    assert np.array_equal(parameter.data[untouched], start[untouched])
    # Touched rows decayed even with a zero data gradient; duplicate gathers
    # coalesce to unique rows first, so each touched row decays exactly once.
    expected = start[[1, 4]] * (1.0 - 0.1 * WD)
    np.testing.assert_allclose(parameter.data[[1, 4]], expected, rtol=0, atol=1e-15)


def test_dense_decay_applies_to_every_row():
    rng = np.random.default_rng(6)
    start = rng.normal(size=(NUM_ROWS, DIM))
    parameter = Parameter(start.copy())
    optimizer = make_optimizer("sgd", {"table": parameter}, 0.1, weight_decay=WD)
    parameter.zero_grad()
    parameter.gather(np.array([0])).backward(np.zeros((1, DIM)))
    optimizer.step()
    # Dense decay shrinks even rows with zero gradient.
    assert not np.array_equal(parameter.data[3], start[3])
    np.testing.assert_allclose(
        parameter.data[3], start[3] * (1.0 - 0.1 * WD), rtol=0, atol=1e-15
    )


# ---------------------------------------------------------------------------- plumbing
def test_make_optimizer_threads_weight_decay():
    parameter = Parameter(np.ones((2, 2)))
    for name in ("sgd", "adagrad", "adam"):
        optimizer = make_optimizer(name, {"p": parameter}, 0.1, weight_decay=0.25)
        assert optimizer.weight_decay == 0.25


def test_negative_weight_decay_rejected():
    parameter = Parameter(np.ones((2, 2)))
    with pytest.raises(ValueError):
        make_optimizer("sgd", {"p": parameter}, 0.1, weight_decay=-0.1)


def test_training_config_threads_weight_decay(toy_dataset):
    model = make_model(
        "DistMult",
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        ModelConfig(dim=8, seed=2),
    )
    decayed = train_model(
        model,
        toy_dataset,
        TrainingConfig(epochs=2, batch_size=4, seed=2, weight_decay=0.1),
    )
    model_plain = make_model(
        "DistMult",
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        ModelConfig(dim=8, seed=2),
    )
    plain = train_model(
        model_plain, toy_dataset, TrainingConfig(epochs=2, batch_size=4, seed=2)
    )
    # Decay actually changes the trajectory...
    assert not np.array_equal(decayed.epoch_losses, plain.epoch_losses)
    # ...and keeps it finite.
    assert np.all(np.isfinite(decayed.epoch_losses))


@pytest.mark.parametrize("model_name", ["TransE", "DistMult", "ComplEx"])
def test_decayed_sparse_training_is_bit_identical_to_dense(model_name, toy_dataset):
    curves, finals = [], []
    for sparse in (True, False):
        model = make_model(
            model_name,
            toy_dataset.num_entities,
            toy_dataset.num_relations,
            ModelConfig(dim=8, seed=3),
        )
        result = train_model(
            model,
            toy_dataset,
            TrainingConfig(
                epochs=3,
                batch_size=len(toy_dataset.train),  # every step touches all rows
                num_negatives=2,
                seed=3,
                optimizer="sgd",
                sparse_updates=sparse,
                weight_decay=0.05,
            ),
        )
        curves.append(result.epoch_losses)
        finals.append({name: p.data.copy() for name, p in model.parameters().items()})
    assert np.array_equal(curves[0], curves[1])
    for name in finals[0]:
        assert np.array_equal(finals[0][name], finals[1][name]), name
