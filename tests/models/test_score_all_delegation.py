"""Mutual delegation between per-query and batched scoring surfaces.

Regression suite for the delegation policy in :class:`KGEModel`:

* ``score_all_tails`` / ``score_all_heads`` on a model with vectorized batch
  kernels must route through those kernels as one-row batches — never through
  the brute-force ``score_triples_np`` sweep;
* the base batch methods on a scorer that only overrides the per-query
  sweeps must route through those sweeps;
* a scorer implementing nothing but ``score_triples`` still works via the
  brute-force fallback, and both directions agree numerically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import ALL_EMBEDDING_MODELS, ModelConfig, make_model
from repro.models.base import KGEModel


def build(name: str, seed: int = 0) -> KGEModel:
    extra = {"embedding_height": 4} if name == "ConvE" else {}
    model = make_model(name, 30, 5, ModelConfig(dim=16, seed=seed, extra=extra))
    model.train_mode(False)
    return model


# ---------------------------------------------------------------------------- batched models
@pytest.mark.parametrize("name", ALL_EMBEDDING_MODELS)
def test_score_all_is_the_one_row_batch(name):
    """Per-query sweeps equal row 0 of the batched kernel, bitwise."""
    model = build(name)
    np.testing.assert_array_equal(
        model.score_all_tails(3, 2),
        model.score_tails_batch(np.array([3]), np.array([2]))[0],
    )
    np.testing.assert_array_equal(
        model.score_all_heads(2, 7),
        model.score_heads_batch(np.array([2]), np.array([7]))[0],
    )


@pytest.mark.parametrize("name", ALL_EMBEDDING_MODELS)
def test_score_all_routes_through_batch_kernel_not_brute_force(name):
    model = build(name)
    calls = {"batch_tails": 0, "batch_heads": 0, "brute": 0}
    original_tails = type(model).score_tails_batch
    original_heads = type(model).score_heads_batch
    original_np = type(model).score_triples_np

    def counted_tails(self, heads, relations):
        calls["batch_tails"] += 1
        return original_tails(self, heads, relations)

    def counted_heads(self, relations, tails):
        calls["batch_heads"] += 1
        return original_heads(self, relations, tails)

    def counted_np(self, heads, relations, tails):
        calls["brute"] += 1
        return original_np(self, heads, relations, tails)

    model.score_tails_batch = counted_tails.__get__(model)
    model.score_heads_batch = counted_heads.__get__(model)
    model.score_triples_np = counted_np.__get__(model)

    # Instance attributes shadow the class lookup used by _overrides, but the
    # delegation decision reads the *class*; call the unbound base methods so
    # the counted instance wrappers observe the routing.
    KGEModel.score_all_tails(model, 1, 1)
    KGEModel.score_all_heads(model, 1, 1)
    if type(model).score_tails_batch is not KGEModel.score_tails_batch:
        assert calls["batch_tails"] == 1
        assert calls["brute"] == 0
    if type(model).score_heads_batch is not KGEModel.score_heads_batch:
        assert calls["batch_heads"] == 1
        assert calls["brute"] == 0


# ---------------------------------------------------------------------------- minimal scorers
class _SweepOnlyModel(KGEModel):
    """Overrides only the per-query sweeps; batch defaults must delegate."""

    def __init__(self, num_entities, num_relations, config=None):
        super().__init__(num_entities, num_relations, config)
        self.table = self.rng.integers(0, 9, size=(8, self.num_entities)).astype(
            np.float64
        )

    def score_triples(self, heads, relations, tails):  # pragma: no cover - unused
        raise AssertionError("batched surfaces must not fall back to score_triples")

    def score_all_tails(self, head: int, relation: int) -> np.ndarray:
        return self.table[(head + relation) % len(self.table)]

    def score_all_heads(self, relation: int, tail: int) -> np.ndarray:
        return self.table[(relation + 2 * tail) % len(self.table)]


class _TripleOnlyModel(KGEModel):
    """Implements nothing but score_triples: every surface brute-forces."""

    def __init__(self, num_entities, num_relations, config=None):
        super().__init__(num_entities, num_relations, config)
        self.entity = self.rng.normal(size=(self.num_entities,))

    def score_triples(self, heads, relations, tails):
        from repro.autodiff import Tensor

        scores = self.entity[np.asarray(heads)] - self.entity[np.asarray(tails)]
        return Tensor(scores + np.asarray(relations))


def test_batch_default_delegates_to_overridden_sweeps():
    model = _SweepOnlyModel(12, 3, ModelConfig(dim=4, seed=0))
    heads = np.array([0, 5, 11])
    relations = np.array([2, 0, 1])
    batch = model.score_tails_batch(heads, relations)
    expected = np.stack(
        [model.score_all_tails(int(h), int(r)) for h, r in zip(heads, relations)]
    )
    np.testing.assert_array_equal(batch, expected)
    batch_heads = model.score_heads_batch(relations, heads)
    expected_heads = np.stack(
        [model.score_all_heads(int(r), int(t)) for r, t in zip(relations, heads)]
    )
    np.testing.assert_array_equal(batch_heads, expected_heads)


def test_triple_only_model_brute_forces_consistently():
    model = _TripleOnlyModel(9, 2, ModelConfig(dim=4, seed=1))
    row = model.score_all_tails(4, 1)
    candidates = np.arange(9)
    expected = model.score_triples_np(
        np.full(9, 4, dtype=np.int64), np.full(9, 1, dtype=np.int64), candidates
    )
    np.testing.assert_array_equal(row, expected)
    batch = model.score_tails_batch(np.array([4]), np.array([1]))
    np.testing.assert_array_equal(batch[0], expected)


def test_empty_batch_returns_empty_matrix():
    model = _SweepOnlyModel(12, 3, ModelConfig(dim=4, seed=0))
    empty = model.score_tails_batch(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert empty.shape == (0, 12)
