"""The TCP JSON-lines serving protocol: round trips, errors, live sockets."""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.api import BatchResult, Query, QueryBatch, WireError
from repro.models import ModelConfig, make_model
from repro.serve import QueryEngine, query_server, serve_forever, start_server
from repro.serve.server import answer_request
from repro.telemetry import Telemetry, scoped


def build_engine(**kwargs):
    model = make_model("TransE", 8, 4, ModelConfig(dim=8, seed=3))
    model.train_mode(False)
    kwargs.setdefault("max_delay", 0.001)
    return QueryEngine(model, **kwargs)


def run_session(engine, *lines):
    """Answer each request line against an in-process engine, no sockets.

    Returns the response *objects* ``answer_request`` would serialize.
    """

    async def session():
        return [await answer_request(engine, line) for line in lines]

    return asyncio.run(session())


# ------------------------------------------------------------------ protocol
def test_query_batch_round_trip_over_the_protocol():
    engine = build_engine()
    batch = QueryBatch.of(Query.tail(0, 1, k=3), Query.head(2, 5, k=3))
    [reply] = run_session(engine, json.dumps(batch.to_wire()))
    response = BatchResult.from_wire(reply)
    assert len(response.results) == 2
    assert response.results[0].side == "tail" and response.results[1].side == "head"
    row = np.asarray(engine.scorer.score_all_tails(0, 1), dtype=np.float64)
    order = np.lexsort((np.arange(len(row)), -row))[:3]
    assert list(response.results[0].entities) == list(order)


def test_malformed_json_gets_an_error_and_the_session_continues():
    engine = build_engine()
    good = json.dumps(QueryBatch.of(Query.tail(0, 0, k=2)).to_wire())
    bad_json, bad_batch, reply = run_session(
        engine, "{not json", json.dumps({"version": 1, "queries": []}), good
    )
    assert "JSON" in bad_json["error"]
    assert "error" in bad_batch
    assert "results" in reply                          # still serving afterwards


def test_protocol_version_too_new_is_rejected():
    engine = build_engine()
    wire = QueryBatch.of(Query.tail(0, 0)).to_wire()
    wire["version"] = 99
    [reply] = run_session(engine, json.dumps(wire))
    assert "version" in reply["error"]


def test_out_of_range_query_is_an_error_reply_not_a_crash():
    engine = build_engine()
    wire = QueryBatch.of(Query.tail(99, 0)).to_wire()
    [reply] = run_session(engine, json.dumps(wire))
    assert "anchor" in reply["error"]


def test_ping_stats_and_unknown_ops():
    engine = build_engine()
    ping, stats, unknown = run_session(
        engine,
        json.dumps({"op": "ping"}),
        json.dumps({"op": "stats"}),
        json.dumps({"op": "selfdestruct"}),
    )
    assert ping == {"ok": True}
    payload = stats["stats"]
    assert payload["queries"] >= 0 and "cache" in payload
    assert "unknown op" in unknown["error"]
    # Without telemetry the stats reply keeps its original shape.
    assert "telemetry" not in stats


def test_stats_op_carries_a_telemetry_snapshot_when_enabled():
    engine = build_engine()
    batch = json.dumps(QueryBatch.of(Query.tail(0, 1, k=3)).to_wire())
    with scoped(Telemetry(enabled=True)):
        reply, stats = run_session(engine, batch, json.dumps({"op": "stats"}))
    assert "results" in reply
    snapshot = stats["telemetry"]
    assert snapshot["counters"]["serve.requests"] >= 1
    assert any(name.startswith("cache.serve.") for name in snapshot["counters"])
    json.dumps(stats)  # the whole reply must stay wire-serializable


# ------------------------------------------------------------------ live sockets
def test_query_server_against_a_live_asyncio_server():
    engine = build_engine()

    async def exercise():
        server = await start_server(engine, host="127.0.0.1", port=0)
        host, port = server.sockets[0].getsockname()[:2]
        batch = QueryBatch.of(Query.tail(1, 2, k=4), Query.tail(1, 2, k=4))
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(
            None, lambda: query_server(host, port, batch)
        )
        server.close()
        await server.wait_closed()
        return response

    response = asyncio.run(exercise())
    assert len(response.results) == 2
    assert response.results[0].entities == response.results[1].entities
    assert len(response.results[0].entities) == 4


def test_serve_forever_in_a_thread_end_to_end():
    engine = build_engine()
    address = {}
    ready = threading.Event()

    def capture(bound):
        address["host"], address["port"] = bound
        ready.set()

    thread = threading.Thread(
        target=serve_forever,
        args=(engine, "127.0.0.1", 0),
        kwargs={"ready": capture},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10), "server never reported ready"

    batch = QueryBatch.of(Query.tail(0, 1, k=3, filtered=False))
    response = query_server(address["host"], address["port"], batch)
    assert len(response.results) == 1
    assert len(response.results[0].entities) == 3
    # Server-side error surfaces as a WireError on the client.
    with pytest.raises(WireError, match="anchor"):
        query_server(address["host"], address["port"], QueryBatch.of(Query.tail(99, 0)))
