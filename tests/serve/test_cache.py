"""The shared bounded LRU score cache: semantics, counters, pickling."""

import pickle
import threading

import numpy as np

from repro.serve import ScoreCache


def test_get_miss_then_put_then_hit_counts():
    cache = ScoreCache(maxsize=4)
    assert cache.get(("tail", 1, 2)) is None
    cache.put(("tail", 1, 2), np.arange(3))
    value = cache.get(("tail", 1, 2))
    assert np.array_equal(value, np.arange(3))
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
    assert stats.size == 1 and stats.maxsize == 4
    assert stats.lookups == 2 and stats.hit_rate == 0.5


def test_eviction_is_least_recently_used_and_counted():
    cache = ScoreCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh "a": "b" is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.stats.evictions == 1
    assert len(cache) == 2


def test_put_refreshes_existing_key_without_eviction():
    cache = ScoreCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)                  # refresh, not insert
    assert cache.stats.evictions == 0
    cache.put("c", 3)                   # evicts "b", the stale entry
    assert "a" in cache and cache.get("a") == 10
    assert "b" not in cache


def test_maxsize_zero_disables_storage_entirely():
    cache = ScoreCache(maxsize=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert cache.get("a") is None       # every lookup stays a miss
    assert len(cache) == 0
    stats = cache.stats
    assert stats.misses == 2 and stats.hits == 0 and stats.evictions == 0


def test_get_or_put_reports_hit_state_and_calls_factory_once():
    cache = ScoreCache(maxsize=4)
    calls = []

    def factory():
        calls.append(1)
        return "value"

    value, was_hit = cache.get_or_put("k", factory)
    assert (value, was_hit) == ("value", False)
    value, was_hit = cache.get_or_put("k", factory)
    assert (value, was_hit) == ("value", True)
    assert len(calls) == 1


def test_clear_drops_entries_but_keeps_lifetime_counters():
    cache = ScoreCache(maxsize=4)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_cache_pickles_with_entries_and_counters():
    cache = ScoreCache(maxsize=3)
    cache.put("a", np.arange(4))
    cache.get("a")
    cache.get("missing")
    restored = pickle.loads(pickle.dumps(cache))
    assert np.array_equal(restored.get("a"), np.arange(4))
    stats = restored.stats
    assert stats.misses == 1 and stats.maxsize == 3
    # The restored lock is functional: operations still work.
    restored.put("b", 2)
    assert restored.get("b") == 2


def test_concurrent_access_is_safe():
    cache = ScoreCache(maxsize=16)
    errors = []

    def worker(offset):
        try:
            for i in range(200):
                cache.put((offset, i % 20), i)
                cache.get((offset, (i + 3) % 20))
        except Exception as error:  # pragma: no cover - only on race bugs
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = cache.stats
    assert stats.lookups == 4 * 200
    assert len(cache) <= 16


# ------------------------------------------------------------------ versioning
def test_version_partitions_the_key_space():
    cache = ScoreCache(maxsize=4, version="v1")
    cache.put(("tail", 1, 2), 1)
    assert cache.get(("tail", 1, 2)) == 1
    assert ("tail", 1, 2) in cache
    cache.version = "v2"  # the same handle after the source of truth moved
    assert cache.get(("tail", 1, 2)) is None
    assert ("tail", 1, 2) not in cache
    cache.version = "v1"
    assert cache.get(("tail", 1, 2)) == 1


def test_invalidate_drops_entries_and_rekeys():
    cache = ScoreCache(maxsize=4, version="v1")
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.invalidate("v2") == 2
    assert len(cache) == 0
    assert cache.version == "v2"
    cache.put("a", 3)
    assert cache.get("a") == 3
    # Invalidation without a new version just clears under the same key space.
    assert cache.invalidate() == 1
    assert cache.version == "v2" and len(cache) == 0


def test_version_and_invalidations_survive_pickle():
    cache = ScoreCache(maxsize=4, version="v1")
    cache.put("a", 1)
    cache.invalidate("v2")
    cache.put("a", 2)
    restored = pickle.loads(pickle.dumps(cache))
    assert restored.version == "v2"
    assert restored.get("a") == 2
    assert restored._invalidations == 1
