"""The CLI serving surface: artifact export, `serve` and `query` commands."""

import threading

import pytest

from repro.api import Query, QueryBatch
from repro.cli import main
from repro.serve import ModelArtifact, QueryEngine, load_model, serve_forever
from repro.serve.server import query_server


def test_train_exports_a_loadable_artifact(tmp_path, capsys):
    target = tmp_path / "artifact"
    exit_code = main(
        [
            "train",
            "--dataset", "wn18rr",
            "--model", "DistMult",
            "--scale", "tiny",
            "--dim", "8",
            "--epochs", "1",
            "--quiet",
            "--export-artifact", str(target),
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "model artifact written" in output and "sha256:" in output

    model = load_model(target)                     # verified, mmap'd
    assert model.name == "DistMult"
    artifact = ModelArtifact.load(target)
    assert artifact.model_name == "DistMult"
    assert artifact.num_entities == model.num_entities


def test_serve_rejects_a_missing_artifact(tmp_path):
    with pytest.raises(SystemExit, match="cannot load artifact"):
        main(["serve", "--artifact", str(tmp_path / "ghost")])


def test_query_reports_a_connection_error_cleanly():
    with pytest.raises(SystemExit, match="cannot reach"):
        main(
            [
                "query", "--anchor", "0", "--relation", "0",
                "--host", "127.0.0.1", "--port", "1",   # nothing listens on port 1
            ]
        )


def test_query_command_against_a_live_server(tmp_path, capsys):
    target = tmp_path / "artifact"
    assert main(
        [
            "train", "--dataset", "wn18rr", "--model", "TransE",
            "--scale", "tiny", "--dim", "8", "--epochs", "1", "--quiet",
            "--export-artifact", str(target),
        ]
    ) == 0
    capsys.readouterr()

    model = load_model(target)
    engine = QueryEngine(model, max_delay=0.001)
    address = {}
    ready = threading.Event()

    def capture(bound):
        address["host"], address["port"] = bound
        ready.set()

    thread = threading.Thread(
        target=serve_forever, args=(engine, "127.0.0.1", 0),
        kwargs={"ready": capture}, daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10)

    # The JSON surface first (machine-readable), then the table rendering.
    exit_code = main(
        [
            "query", "--anchor", "0", "--relation", "0", "--top-k", "3",
            "--host", address["host"], "--port", str(address["port"]), "--json",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert '"results"' in out

    exit_code = main(
        [
            "query", "--side", "head", "--anchor", "1", "--relation", "0",
            "--top-k", "2",
            "--host", address["host"], "--port", str(address["port"]),
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "top-2" in out

    # The same socket also answers the library client.
    response = query_server(
        address["host"], address["port"], QueryBatch.of(Query.tail(0, 0, k=3))
    )
    assert len(response.results[0].entities) == 3
