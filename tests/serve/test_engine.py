"""The micro-batching query engine: exact answers at any batching/cache state.

The tentpole acceptance tests live here:

* top-k ids **and** scores are bit-identical to the full-sort reference
  ``lexsort((ids, -row))[:k]`` for every registered embedding model (plus the
  Cartesian-product baseline, whose massive score ties stress the
  deterministic tie-break), at micro-batch sizes 1, 3 and 64, cold and warm;
* requested ranks equal the evaluator's exact mean-tie ranks;
* the full evaluation protocol, run through :class:`EngineClient` as the
  scorer, reproduces the direct evaluation bit for bit — the evaluator as a
  *client of the serving protocol*.
"""

import asyncio

import numpy as np
import pytest

from repro.api import Query, QueryBatch
from repro.core.cartesian import CartesianProductPredictor
from repro.eval import evaluate_model
from repro.models import ModelConfig, make_model
from repro.models.registry import MODEL_REGISTRY
from repro.serve import EngineClient, QueryEngine, known_completion_index, topk_row

ALL_MODELS = sorted(MODEL_REGISTRY)
NUM_ENTITIES, NUM_RELATIONS = 8, 4


def build_model(name, seed=11):
    if name == "ConvE":
        config = ModelConfig(dim=16, seed=seed, extra={"embedding_height": 4})
    else:
        config = ModelConfig(dim=8, seed=seed)
    model = make_model(name, NUM_ENTITIES, NUM_RELATIONS, config)
    model.train_mode(False)
    return model


def reference_topk(row, k, exclude=()):
    """Ground truth: full lexsort by (score desc, id asc), exclusions removed."""
    order = np.lexsort((np.arange(len(row)), -row))
    keep = [entity for entity in order if entity not in set(exclude)]
    return keep[:k]


# ------------------------------------------------------------------ topk_row unit
def test_topk_row_matches_full_sort_on_heavy_ties():
    row = np.array([1.0, 3.0, 3.0, 2.0, 3.0, 1.0, 2.0, 0.5])
    for k in range(1, len(row) + 1):
        ids, scores = topk_row(row, k)
        assert list(ids) == reference_topk(row, k)
        assert np.array_equal(scores, row[ids])


def test_topk_row_with_candidate_restriction():
    row = np.array([5.0, 4.0, 4.0, 4.0, 3.0, 2.0, 1.0, 0.0])
    candidates = np.array([1, 3, 5, 7], dtype=np.int64)
    ids, scores = topk_row(row, 3, candidates)
    assert list(ids) == [1, 3, 5]        # 4.0 tie broken toward smaller id
    assert np.array_equal(scores, row[ids])


def test_topk_row_k_larger_than_pool():
    row = np.array([1.0, 2.0, 3.0])
    ids, _ = topk_row(row, 10)
    assert list(ids) == [2, 1, 0]


# ------------------------------------------------------------------ acceptance
@pytest.mark.parametrize("max_batch", [1, 3, 64])
@pytest.mark.parametrize("name", ALL_MODELS)
def test_topk_bit_identical_to_reference_at_any_batching(name, max_batch, toy_dataset):
    model = build_model(name)
    known = known_completion_index(toy_dataset.known_triples())
    engine = QueryEngine(model, known=known, max_batch=max_batch, max_delay=0.001)
    with EngineClient(engine) as client:
        for cache_state in ("cold", "warm"):
            for h, r, t in toy_dataset.test:
                for query, row in [
                    (Query.tail(h, r, k=5), np.asarray(model.score_all_tails(h, r), dtype=np.float64)),
                    (Query.head(r, t, k=5), np.asarray(model.score_all_heads(r, t), dtype=np.float64)),
                ]:
                    result = client.query(query)
                    expected = reference_topk(row, 5)
                    assert list(result.entities) == expected, (name, cache_state, query)
                    assert np.array_equal(np.asarray(result.scores), row[expected])

                    key = query.score_key
                    exclude = known.get(key, ())
                    filtered = client.query(
                        Query(query.side, query.anchor, query.relation, k=5, filtered=True)
                    )
                    expected = reference_topk(row, 5, exclude=exclude)
                    assert list(filtered.entities) == expected
                    assert not set(filtered.entities) & set(np.asarray(exclude).tolist())
        assert engine.stats.cache.hits > 0   # the warm pass really hit the cache


def test_cartesian_predictor_ties_stay_deterministic(toy_dataset):
    scorer = CartesianProductPredictor(
        toy_dataset.train, toy_dataset.num_entities, density_threshold=0.75
    )
    engine = QueryEngine(scorer, max_batch=4, max_delay=0.001)
    with EngineClient(engine) as client:
        for relation in range(NUM_RELATIONS):
            row = np.asarray(scorer.score_all_tails(0, relation), dtype=np.float64)
            result = client.query(Query.tail(0, relation, k=6))
            assert list(result.entities) == reference_topk(row, 6)


def test_ranks_equal_the_evaluators_mean_tie_ranks(toy_dataset):
    model = build_model("TransE")
    reference = evaluate_model(model, toy_dataset)
    engine = QueryEngine.for_dataset(model, toy_dataset)
    with EngineClient(engine) as client:
        for record in reference.records:
            if record.side == "tail":
                query = Query.tail(record.head, record.relation, k=NUM_ENTITIES)
                target = record.tail
            else:
                query = Query.head(record.relation, record.tail, k=NUM_ENTITIES)
                target = record.head
            result = client.query(query)
            position = result.entities.index(target)
            assert result.ranks[position] == record.raw_rank


@pytest.mark.parametrize("name", ["TransE", "ComplEx", "RotatE"])
def test_full_evaluation_through_the_engine_client_is_bit_identical(name, toy_dataset):
    """The evaluator as a client of the serving protocol (acceptance)."""
    model = build_model(name)
    direct = evaluate_model(model, toy_dataset)
    engine = QueryEngine(model, max_batch=16, max_delay=0.001)
    with EngineClient(engine) as client:
        served = evaluate_model(client, toy_dataset, model_name=name)
    assert len(direct.records) == len(served.records)
    for ours, theirs in zip(direct.records, served.records):
        assert ours.triple == theirs.triple and ours.side == theirs.side
        assert ours.raw_rank == theirs.raw_rank
        assert ours.filtered_rank == theirs.filtered_rank
    assert direct.metrics().as_dict() == served.metrics().as_dict()


# ------------------------------------------------------------------ coalescing
def test_concurrent_identical_queries_are_scored_once():
    model = build_model("DistMult")
    engine = QueryEngine(model, max_batch=64, max_delay=0.05)

    async def burst():
        return await asyncio.gather(
            *(engine.submit(Query.tail(1, 2, k=3)) for _ in range(10))
        )

    results = asyncio.run(burst())
    stats = engine.stats
    assert stats.queries == 10
    assert stats.scored_rows == 1            # deduplicated inside the flush
    assert stats.flushes == 1
    assert stats.largest_batch == 10
    assert len({tuple(result.entities) for result in results}) == 1
    assert all(result.batch_size == 10 for result in results)


def test_max_batch_forces_early_flushes():
    model = build_model("DistMult")
    engine = QueryEngine(model, max_batch=2, max_delay=60.0)  # timer would stall

    async def burst():
        queries = [Query.tail(h, r, k=2) for h in range(4) for r in range(2)]
        return await asyncio.gather(*(engine.submit(query) for query in queries))

    results = asyncio.run(burst())
    assert len(results) == 8
    assert engine.stats.flushes >= 4          # 8 distinct queries, batches of 2


def test_cache_hits_answer_without_scoring():
    model = build_model("TransE")
    engine = QueryEngine(model, max_batch=4, max_delay=0.001)

    async def twice():
        first = await engine.submit(Query.tail(0, 1, k=4))
        second = await engine.submit(Query.tail(0, 1, k=2, filtered=False))
        return first, second

    first, second = asyncio.run(twice())
    assert not first.cache_hit and second.cache_hit
    assert engine.stats.scored_rows == 1
    assert list(second.entities) == list(first.entities[:2])


def test_submit_batch_preserves_request_order():
    model = build_model("TransE")
    engine = QueryEngine(model, max_batch=8, max_delay=0.001)
    batch = QueryBatch.of(
        Query.tail(3, 1, k=2), Query.head(0, 5, k=2), Query.tail(0, 0, k=2)
    )
    result = asyncio.run(engine.submit_batch(batch))
    assert [(r.side, r.anchor, r.relation) for r in result.results] == [
        ("tail", 3, 1), ("head", 5, 0), ("tail", 0, 0)
    ]


# ------------------------------------------------------------------ validation
def test_out_of_range_queries_are_rejected():
    model = build_model("TransE")
    engine = QueryEngine(model)
    with pytest.raises(ValueError, match="anchor"):
        asyncio.run(engine.submit(Query.tail(99, 0)))
    with pytest.raises(ValueError, match="relation"):
        asyncio.run(engine.submit(Query.tail(0, 99)))


def test_engine_requires_num_entities():
    class Bare:
        pass

    with pytest.raises(ValueError, match="num_entities"):
        QueryEngine(Bare())
