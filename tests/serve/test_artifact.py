"""Model artifacts: bit-identical round trips, integrity errors, worker shipping.

The artifact export satellite's acceptance tests live here: for **every**
registered embedding model, save → load(mmap) must reproduce parameters,
score rows and full-evaluation metrics bit for bit; tampered and truncated
artifacts must fail loudly; and the sharded evaluator must ship workers the
few-hundred-byte artifact ref instead of pickled parameter tables — with
bit-identical metrics.
"""

import json
import pickle

import numpy as np
import pytest

from repro.eval import EvalOptions, evaluate_model
from repro.models import ModelConfig, make_model
from repro.models.registry import MODEL_REGISTRY
from repro.serve import (
    ArtifactError,
    ArtifactScorerRef,
    FingerprintMismatchError,
    ModelArtifact,
    TruncatedArtifactError,
    artifact_ref_for,
    load_model,
)

ALL_MODELS = sorted(MODEL_REGISTRY)


def build_model(name, num_entities=8, num_relations=4, dim=8, seed=7):
    # ConvE's 2D reshape needs height * width == dim with room for the kernel.
    if name == "ConvE":
        dim, extra = 16, {"embedding_height": 4}
    else:
        extra = {}
    model = make_model(
        name, num_entities, num_relations, ModelConfig(dim=dim, seed=seed, extra=extra)
    )
    model.train_mode(False)
    return model


# ------------------------------------------------------------------ round trips
@pytest.mark.parametrize("name", ALL_MODELS)
def test_save_load_round_trip_is_bit_identical(name, tmp_path, toy_dataset):
    model = build_model(name)
    artifact = ModelArtifact.save(model, tmp_path / name)
    assert artifact.fingerprint.startswith("sha256:")
    assert artifact.model_name == name

    loaded = load_model(tmp_path / name)                      # mmap=True
    in_memory = ModelArtifact.load(tmp_path / name).instantiate(mmap=False)

    # Parameters are bit-identical and the mmap path really maps the files.
    for param_name, parameter in model.parameters().items():
        table = loaded.parameters()[param_name].data
        assert isinstance(table, np.memmap)
        assert not table.flags.writeable
        assert np.array_equal(parameter.data, table)
        assert np.array_equal(parameter.data, in_memory.parameters()[param_name].data)

    # Score rows are bit-identical (both sides, batched contract included).
    for h, r in [(0, 0), (3, 2), (7, 3)]:
        assert np.array_equal(model.score_all_tails(h, r), loaded.score_all_tails(h, r))
        assert np.array_equal(model.score_all_heads(r, h), loaded.score_all_heads(r, h))
    heads = np.array([0, 3, 5])
    relations = np.array([0, 1, 3])
    assert np.array_equal(
        model.score_tails_batch(heads, relations),
        loaded.score_tails_batch(heads, relations),
    )

    # Full evaluation metrics: mmap == in-memory == original, bit for bit.
    reference = evaluate_model(model, toy_dataset)
    for candidate in (loaded, in_memory):
        result = evaluate_model(candidate, toy_dataset)
        for ours, theirs in zip(reference.records, result.records):
            assert ours.raw_rank == theirs.raw_rank
            assert ours.filtered_rank == theirs.filtered_rank


def test_artifact_attaches_to_the_saving_and_loaded_model(tmp_path):
    model = build_model("TransE")
    assert artifact_ref_for(model) is None                    # nothing attached yet
    ModelArtifact.save(model, tmp_path / "a")
    ref = artifact_ref_for(model)
    assert isinstance(ref, ArtifactScorerRef)
    loaded = load_model(tmp_path / "a")
    assert artifact_ref_for(loaded) is not None
    resolved = ref.resolve()
    assert np.array_equal(model.score_all_tails(0, 0), resolved.score_all_tails(0, 0))


def test_save_refuses_overwrite_without_flag(tmp_path):
    model = build_model("DistMult")
    ModelArtifact.save(model, tmp_path / "a")
    with pytest.raises(ArtifactError, match="overwrite"):
        ModelArtifact.save(model, tmp_path / "a")
    ModelArtifact.save(model, tmp_path / "a", overwrite=True)  # explicit is fine


# ------------------------------------------------------------------ error paths
def _param_file(directory):
    manifest = json.loads((directory / "manifest.json").read_text())
    meta = next(iter(manifest["params"].values()))
    return directory / meta["file"]


def test_tampered_parameter_file_fails_fingerprint_verification(tmp_path):
    ModelArtifact.save(build_model("TransE"), tmp_path / "a")
    path = _param_file(tmp_path / "a")
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF                                          # same size, new content
    path.write_bytes(bytes(blob))
    with pytest.raises(FingerprintMismatchError, match="content hash"):
        ModelArtifact.load(tmp_path / "a")
    # Trusted loads skip the re-hash by design.
    ModelArtifact.load(tmp_path / "a", verify=False)


def test_edited_manifest_fails_fingerprint_verification(tmp_path):
    ModelArtifact.save(build_model("TransE"), tmp_path / "a")
    manifest_path = tmp_path / "a" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["num_entities"] = 999
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(FingerprintMismatchError, match="fingerprint"):
        ModelArtifact.load(tmp_path / "a")


def test_truncated_parameter_file_is_detected_before_np_load(tmp_path):
    ModelArtifact.save(build_model("TransE"), tmp_path / "a")
    path = _param_file(tmp_path / "a")
    path.write_bytes(path.read_bytes()[:-16])
    with pytest.raises(TruncatedArtifactError, match="truncated"):
        ModelArtifact.load(tmp_path / "a", verify=False)      # structural check, no hashing


def test_missing_parameter_file_is_detected(tmp_path):
    ModelArtifact.save(build_model("TransE"), tmp_path / "a")
    _param_file(tmp_path / "a").unlink()
    with pytest.raises(TruncatedArtifactError, match="missing"):
        ModelArtifact.load(tmp_path / "a", verify=False)


def test_missing_manifest_and_newer_version_are_clean_errors(tmp_path):
    with pytest.raises(ArtifactError, match="manifest"):
        ModelArtifact.load(tmp_path / "nope")
    ModelArtifact.save(build_model("TransE"), tmp_path / "a")
    manifest_path = tmp_path / "a" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 99
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ArtifactError, match="newer"):
        ModelArtifact.load(tmp_path / "a", verify=False)


# ------------------------------------------------------------------ worker shipping
def test_artifact_ref_ships_smaller_than_the_pickled_model(tmp_path):
    model = build_model("TransE", num_entities=300, num_relations=20, dim=32)
    ModelArtifact.save(model, tmp_path / "a")
    ref = artifact_ref_for(model)
    assert len(pickle.dumps(ref)) < len(pickle.dumps(model)) / 10


def test_shippable_scorer_prefers_the_ref(tmp_path):
    from repro.eval.sharding import _shippable_scorer

    model = build_model("TransE")
    assert _shippable_scorer(model) is model                  # no artifact: ship whole
    ModelArtifact.save(model, tmp_path / "a")
    shipped = _shippable_scorer(model)
    assert isinstance(shipped, ArtifactScorerRef)


@pytest.mark.multiprocess
def test_sharded_eval_through_artifact_refs_is_bit_identical(
    tmp_path, toy_dataset, capped_workers
):
    model = build_model("DistMult")
    reference = evaluate_model(model, toy_dataset)

    ModelArtifact.save(model, tmp_path / "a")                 # attaches the artifact
    sharded = evaluate_model(
        model, toy_dataset, options=EvalOptions(workers=capped_workers(2))
    )
    for ours, theirs in zip(reference.records, sharded.records):
        assert ours.raw_rank == theirs.raw_rank
        assert ours.filtered_rank == theirs.filtered_rank
