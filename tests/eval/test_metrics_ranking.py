"""Tests for the metrics, the ranking protocol and filtered evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    LinkPredictionEvaluator,
    RankingMetrics,
    better_of,
    evaluate_model,
    metrics_from_rank_pairs,
)
from repro.eval.ranking import _rank_with_mean_ties
from repro.kg import TripleSet


# ------------------------------------------------------------------ metrics
def test_ranking_metrics_from_known_ranks():
    metrics = RankingMetrics.from_ranks([1, 2, 10, 100])
    assert metrics.count == 4
    assert metrics.mean_rank == pytest.approx(28.25)
    assert metrics.mean_reciprocal_rank == pytest.approx((1 + 0.5 + 0.1 + 0.01) / 4)
    assert metrics.hits_at_1 == pytest.approx(0.25)
    assert metrics.hits_at_10 == pytest.approx(0.75)


def test_ranking_metrics_empty_is_nan():
    metrics = RankingMetrics.from_ranks([])
    assert metrics.count == 0
    assert np.isnan(metrics.mean_rank)


def test_metric_pair_as_dict_uses_paper_prefixes():
    pair = metrics_from_rank_pairs([1, 2], [1, 1])
    row = pair.as_dict()
    assert row["MRR"] == pytest.approx(0.75)
    assert row["FMRR"] == pytest.approx(1.0)
    assert row["FHits@1"] == pytest.approx(100.0)


def test_better_of_directions():
    assert better_of("FMRR", 0.5, 0.3) == -1
    assert better_of("FMR", 10, 20) == -1
    assert better_of("FMR", 30, 20) == 1
    assert better_of("Hits@10", 50, 50) == 0


@given(st.lists(st.integers(1, 500), min_size=1, max_size=60))
def test_property_metric_bounds(ranks):
    metrics = RankingMetrics.from_ranks(ranks)
    assert 1.0 <= metrics.mean_rank <= 500.0
    assert 0.0 < metrics.mean_reciprocal_rank <= 1.0
    assert 0.0 <= metrics.hits_at_1 <= metrics.hits_at_3 <= metrics.hits_at_10 <= 1.0


# ------------------------------------------------------------------ tie-aware rank helper
def test_rank_with_mean_ties():
    scores = np.array([0.9, 0.5, 0.5, 0.1])
    mask = np.ones(4, dtype=bool)
    assert _rank_with_mean_ties(scores, 0, mask) == 1.0
    assert _rank_with_mean_ties(scores, 1, mask) == 2.5  # tied with index 2
    assert _rank_with_mean_ties(scores, 3, mask) == 4.0
    mask[0] = False
    assert _rank_with_mean_ties(scores, 1, mask) == 1.5


# ------------------------------------------------------------------ the protocol
class OracleScorer:
    """Knows the training set: scores observed completions 1, everything else 0."""

    name = "Oracle"

    def __init__(self, triples: TripleSet, num_entities: int) -> None:
        self.triples = triples
        self.num_entities = num_entities

    def score_all_tails(self, head, relation):
        scores = np.zeros(self.num_entities)
        for tail in self.triples.tails_of(head, relation):
            scores[tail] = 1.0
        return scores

    def score_all_heads(self, relation, tail):
        scores = np.zeros(self.num_entities)
        for head in self.triples.heads_of(relation, tail):
            scores[head] = 1.0
        return scores


def test_filtered_rank_removes_known_positives(toy_dataset):
    """An oracle that knows every triple must get perfect *filtered* ranks on
    test triples it has seen, while raw ranks are penalized by the other true
    completions sharing the top score."""
    oracle = OracleScorer(toy_dataset.all_triples(), toy_dataset.num_entities)
    result = evaluate_model(oracle, toy_dataset)
    filtered = result.filtered_metrics()
    assert filtered.hits_at_1 == pytest.approx(1.0)
    assert filtered.mean_rank == pytest.approx(1.0)
    raw = result.raw_metrics()
    assert raw.mean_rank >= filtered.mean_rank


def test_evaluation_produces_two_records_per_test_triple(toy_dataset):
    oracle = OracleScorer(toy_dataset.all_triples(), toy_dataset.num_entities)
    result = evaluate_model(oracle, toy_dataset)
    assert len(result.records) == 2 * len(toy_dataset.test)
    sides = {record.side for record in result.records}
    assert sides == {"head", "tail"}


def test_evaluator_single_side_and_subset(toy_dataset):
    oracle = OracleScorer(toy_dataset.all_triples(), toy_dataset.num_entities)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    subset = [next(iter(toy_dataset.test))]
    result = evaluator.evaluate(oracle, test_triples=subset, sides=("tail",))
    assert len(result.records) == 1
    assert result.records[0].side == "tail"


def test_extra_ground_truth_improves_filtered_rank(toy_dataset):
    """Adding a larger ground truth (Freebase in Table 3) can only help filtered ranks."""
    # A scorer that (wrongly, per the benchmark) also believes (3, born_in, 6).
    class Believer(OracleScorer):
        def score_all_tails(self, head, relation):
            scores = super().score_all_tails(head, relation)
            if head == 3 and relation == 3:
                scores[6] = 2.0  # ranked above the true test tail 7
                scores[7] = 1.0
            return scores

    believer = Believer(toy_dataset.all_triples(), toy_dataset.num_entities)
    plain = evaluate_model(believer, toy_dataset)
    extra = TripleSet([(3, 3, 6)])
    augmented = evaluate_model(believer, toy_dataset, extra_ground_truth=extra)

    def tail_rank(result):
        return next(
            record.filtered_rank
            for record in result.records
            if record.triple == (3, 3, 7) and record.side == "tail"
        )

    assert augmented.metrics().filtered.mean_rank <= plain.metrics().filtered.mean_rank
    assert tail_rank(augmented) < tail_rank(plain)


def test_metrics_by_relation_and_side(toy_dataset):
    oracle = OracleScorer(toy_dataset.all_triples(), toy_dataset.num_entities)
    result = evaluate_model(oracle, toy_dataset)
    by_relation = result.metrics_by_relation()
    assert set(by_relation) == set(toy_dataset.test_relations())
    by_side = result.metrics_by_side()
    assert set(by_side) == {"head", "tail"}
    assert by_side["tail"].filtered.count == len(toy_dataset.test)


def test_as_row_contains_model_and_dataset(toy_dataset):
    oracle = OracleScorer(toy_dataset.all_triples(), toy_dataset.num_entities)
    row = evaluate_model(oracle, toy_dataset, model_name="Oracle").as_row()
    assert row["model"] == "Oracle"
    assert row["dataset"] == "toy"
    assert "FMRR" in row


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 30), st.integers(0, 1000))
def test_property_random_scorer_ranks_within_bounds(num_entities, seed):
    """Ranks are always within [1, num_entities] and filtered ≤ raw."""
    rng = np.random.default_rng(seed)

    class RandomScorer:
        name = "Random"

        def score_all_tails(self, head, relation):
            return rng.random(num_entities)

        def score_all_heads(self, relation, tail):
            return rng.random(num_entities)

    from repro.kg import Dataset, Vocabulary

    vocab = Vocabulary.from_labels([f"e{i}" for i in range(num_entities)], ["r"])
    train = TripleSet([(i, 0, (i + 1) % num_entities) for i in range(num_entities - 1)])
    test = TripleSet([(num_entities - 1, 0, 0)])
    dataset = Dataset("rand", vocab, train, TripleSet(), test)
    result = evaluate_model(RandomScorer(), dataset)
    for record in result.records:
        assert 1.0 <= record.filtered_rank <= record.raw_rank <= num_entities
