"""Shard-merge determinism and multi-process equivalence.

The contract under test: **any** contiguous shard partition of **any**
unique-query order reproduces the single-process raw and filtered ranks
bit-identically — including massive score ties and ``n_workers > n_queries``
— and the multi-process evaluator is just that merge executed across worker
processes, so it inherits the identity for every scorer family.
"""

from __future__ import annotations

import multiprocessing
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import SimpleRuleModel
from repro.core.cartesian import CartesianProductPredictor
from repro.eval import (
    LinkPredictionEvaluator,
    evaluate_model,
    evaluate_shards,
    plan_shards,
    rank_shard,
)
from repro.models import ModelConfig, make_model
from repro.models.registry import ALL_EMBEDDING_MODELS
from repro.rules.amie import AmieConfig, AmieMiner
from repro.rules.predictor import RuleBasedPredictor
from repro.telemetry import Telemetry, scoped

#: Test-local scorer classes ship to workers by reference, which only works
#: when the child inherits this module's state via fork.
requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="test-local scorer classes only ship to workers under fork",
)


def _assert_identical_results(reference, other):
    assert len(reference.records) == len(other.records)
    for expected, actual in zip(reference.records, other.records):
        assert (expected.triple, expected.side) == (actual.triple, actual.side)
        assert expected.raw_rank == actual.raw_rank, (expected, actual)
        assert expected.filtered_rank == actual.filtered_rank, (expected, actual)


def _query_rich_triples(dataset):
    return list(dataset.train) + list(dataset.valid) + list(dataset.test)


# ---------------------------------------------------------------------------- planning
@settings(max_examples=200, deadline=None)
@given(
    num_queries=st.integers(min_value=0, max_value=200),
    n_workers=st.integers(min_value=1, max_value=16),
    shard_size=st.none() | st.integers(min_value=1, max_value=32),
)
def test_plan_shards_is_a_deterministic_contiguous_partition(
    num_queries, n_workers, shard_size
):
    shards = plan_shards(num_queries, n_workers, shard_size)
    assert shards == plan_shards(num_queries, n_workers, shard_size)
    cursor = 0
    for start, stop in shards:
        assert start == cursor and stop > start
        cursor = stop
    assert cursor == num_queries
    if num_queries == 0:
        assert shards == []
    elif shard_size is None:
        # One balanced shard per worker; n_workers > num_queries degrades to
        # singleton shards, never empty ones.
        assert len(shards) == min(n_workers, num_queries)
        sizes = [stop - start for start, stop in shards]
        assert max(sizes) - min(sizes) <= 1
    else:
        assert len(shards) == -(-num_queries // shard_size)
        assert all(stop - start <= shard_size for start, stop in shards)


# ---------------------------------------------------------------------------- merge property
class _TieHeavyScorer:
    """Few distinct score values => massive ties; no batched contract, so the
    per-query fallback inside :func:`rank_shard` is exercised too."""

    name = "TieHeavy"

    def __init__(self, num_entities: int, modulus: int = 3, seed: int = 5) -> None:
        self.num_entities = num_entities
        rng = np.random.default_rng(seed)
        self.table = rng.integers(0, modulus, size=(8, num_entities)).astype(np.float64)

    def score_all_tails(self, head: int, relation: int) -> np.ndarray:
        return self.table[(head + 2 * relation) % len(self.table)]

    def score_all_heads(self, relation: int, tail: int) -> np.ndarray:
        return self.table[(relation + 3 * tail) % len(self.table)]


_TRIPLES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=40,
)


def _side_entries(triples, side):
    """The evaluator's deduplicated (query, targets) order for one side."""
    groups = {}
    for h, r, t in triples:
        query = (h, r) if side == "tail" else (r, t)
        groups.setdefault(query, []).append(t if side == "tail" else h)
    return [
        (query, np.asarray(groups[query], dtype=np.int64)) for query in sorted(groups)
    ]


def _known_index(triples, side):
    known = {}
    for h, r, t in triples:
        query = (h, r) if side == "tail" else (r, t)
        known.setdefault(query, set()).add(t if side == "tail" else h)
    return {
        query: np.fromiter(sorted(values), dtype=np.int64, count=len(values))
        for query, values in known.items()
    }


@settings(max_examples=60, deadline=None)
@given(
    triples=_TRIPLES,
    side=st.sampled_from(["tail", "head"]),
    n_workers=st.integers(min_value=1, max_value=64),
    shard_size=st.none() | st.integers(min_value=1, max_value=8),
    eval_batch_size=st.integers(min_value=1, max_value=7),
)
def test_any_shard_partition_reproduces_single_process_ranks(
    triples, side, n_workers, shard_size, eval_batch_size
):
    """The property at the heart of the subsystem: shard boundaries (for any
    worker count, shard size and batch size, ties included) are unobservable
    in the merged raw and filtered rank arrays."""
    scorer = _TieHeavyScorer(num_entities=8)
    entries = _side_entries(triples, side)
    known = _known_index(triples, side)
    whole_raw, whole_filtered = rank_shard(scorer, entries, side, known, eval_batch_size)
    raw_parts, filtered_parts = [], []
    for start, stop in plan_shards(len(entries), n_workers, shard_size):
        raw, filtered = rank_shard(
            scorer, entries[start:stop], side, known, eval_batch_size
        )
        raw_parts.append(raw)
        filtered_parts.append(filtered)
    merged_raw = np.concatenate(raw_parts)
    merged_filtered = np.concatenate(filtered_parts)
    assert np.array_equal(whole_raw, merged_raw)
    assert np.array_equal(whole_filtered, merged_filtered)
    # evaluate_shards with n_workers=1 is the exact in-process path.
    in_process = evaluate_shards(
        scorer, {side: entries}, {side: known}, 1, shard_size, eval_batch_size
    )
    assert np.array_equal(in_process[side][0], whole_raw)
    assert np.array_equal(in_process[side][1], whole_filtered)


# ---------------------------------------------------------------------------- multi-process equivalence
@pytest.mark.multiprocess
@pytest.mark.parametrize("model_name", sorted(ALL_EMBEDDING_MODELS))
def test_embedding_models_sharded_matches_single_process(
    model_name, toy_dataset, capped_workers
):
    extra = {"embedding_height": 4} if model_name == "ConvE" else {}
    model = make_model(
        model_name,
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        ModelConfig(dim=16, seed=7, extra=extra),
    )
    model.train_mode(False)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    triples = _query_rich_triples(toy_dataset)
    single = evaluator.evaluate(model, test_triples=triples)
    sharded = evaluator.evaluate(model, test_triples=triples, n_workers=capped_workers(2))
    _assert_identical_results(single, sharded)


@pytest.mark.multiprocess
@pytest.mark.parametrize("scorer_kind", ["amie", "simple", "cartesian"])
def test_rule_and_baseline_predictors_sharded_matches_single_process(
    scorer_kind, toy_dataset, capped_workers
):
    if scorer_kind == "amie":
        rules = AmieMiner(toy_dataset.train, AmieConfig()).mine()
        scorer = RuleBasedPredictor(rules.rules, toy_dataset.train, toy_dataset.num_entities)
    elif scorer_kind == "simple":
        scorer = SimpleRuleModel(toy_dataset.train, toy_dataset.num_entities, threshold=0.5)
    else:
        scorer = CartesianProductPredictor(toy_dataset.train, toy_dataset.num_entities)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    triples = _query_rich_triples(toy_dataset)
    single = evaluator.evaluate(scorer, test_triples=triples)
    sharded = evaluator.evaluate(
        scorer, test_triples=triples, n_workers=capped_workers(2), shard_size=2
    )
    _assert_identical_results(single, sharded)


@pytest.mark.multiprocess
@requires_fork
def test_scalar_only_scorers_shard_through_the_fallback(toy_dataset, capped_workers):
    scorer = _TieHeavyScorer(toy_dataset.num_entities)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    triples = _query_rich_triples(toy_dataset)
    single = evaluator.evaluate(scorer, test_triples=triples)
    sharded = evaluator.evaluate(scorer, test_triples=triples, n_workers=capped_workers(2))
    _assert_identical_results(single, sharded)


@pytest.mark.multiprocess
def test_more_workers_than_queries(toy_dataset, capped_workers):
    model = make_model(
        "DistMult", toy_dataset.num_entities, toy_dataset.num_relations, ModelConfig(dim=8, seed=3)
    )
    model.train_mode(False)
    triples = [next(iter(toy_dataset.test))]
    evaluator = LinkPredictionEvaluator(toy_dataset)
    single = evaluator.evaluate(model, test_triples=triples)
    sharded = evaluator.evaluate(model, test_triples=triples, n_workers=capped_workers(4))
    _assert_identical_results(single, sharded)
    assert len(sharded.records) == 2  # one head + one tail record


@pytest.mark.multiprocess
def test_constructor_knobs_and_evaluate_model_passthrough(toy_dataset, capped_workers):
    model = make_model(
        "ComplEx", toy_dataset.num_entities, toy_dataset.num_relations, ModelConfig(dim=8, seed=11)
    )
    model.train_mode(False)
    baseline = LinkPredictionEvaluator(toy_dataset).evaluate(model)
    via_constructor = LinkPredictionEvaluator(
        toy_dataset, n_workers=capped_workers(2), shard_size=1
    ).evaluate(model)
    _assert_identical_results(baseline, via_constructor)
    via_wrapper = evaluate_model(
        model, toy_dataset, n_workers=capped_workers(2), model_name="ComplEx"
    )
    assert baseline.metrics().as_dict() == via_wrapper.metrics().as_dict()


@pytest.mark.multiprocess
def test_sharded_metrics_equal_single_process_metrics(toy_dataset, capped_workers):
    """Aggregate metrics — not just ranks — are bit-identical when sharded."""
    scorer = SimpleRuleModel(toy_dataset.train, toy_dataset.num_entities, threshold=0.5)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    single = evaluator.evaluate(scorer)
    sharded = evaluator.evaluate(scorer, n_workers=capped_workers(3))
    assert single.metrics().as_dict() == sharded.metrics().as_dict()
    assert single.metrics_by_relation().keys() == sharded.metrics_by_relation().keys()


# ---------------------------------------------------------------------------- telemetry merge
@settings(max_examples=40, deadline=None)
@given(
    triples=_TRIPLES,
    side=st.sampled_from(["tail", "head"]),
    n_workers=st.integers(min_value=1, max_value=8),
    shard_size=st.none() | st.integers(min_value=1, max_value=8),
    order_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_per_shard_telemetry_payloads_fold_to_single_process_counts(
    triples, side, n_workers, shard_size, order_seed
):
    """Telemetry inherits the shard-merge property: running each shard under
    its own scoped Telemetry (exactly what a pool worker does) and absorbing
    the payloads in ANY order reproduces the single-process metric counts."""
    scorer = _TieHeavyScorer(num_entities=8)
    entries = _side_entries(triples, side)
    known = _known_index(triples, side)

    with scoped(Telemetry(enabled=True)) as single:
        evaluate_shards(scorer, {side: entries}, {side: known}, 1, None, 4)
        reference = single.snapshot()["counters"]

    shards = plan_shards(len(entries), n_workers, shard_size)
    payloads = []
    for start, stop in shards:
        with scoped(Telemetry(enabled=True)) as worker:
            evaluate_shards(
                scorer, {side: entries[start:stop]}, {side: known}, 1, None, 4
            )
            payloads.append(worker.worker_payload())
    random.Random(order_seed).shuffle(payloads)

    parent = Telemetry(enabled=True)
    for payload in payloads:
        parent.absorb_worker_payload(payload)
    merged = parent.snapshot()["counters"]
    assert merged["eval.entries"] == reference["eval.entries"]
    assert merged["eval.ranked_targets"] == reference["eval.ranked_targets"]
    assert merged["eval.shards"] == len(shards)
    spans = [r for r in parent.trace_records() if r["name"] == "eval.rank_shard"]
    assert len(spans) == len(shards)
    assert sum(r["attrs"]["entries"] for r in spans) == len(entries)


@pytest.mark.multiprocess
def test_multiprocess_eval_telemetry_matches_single_process(
    toy_dataset, capped_workers
):
    """Worker payloads shipped through a real pool fold to the single-process
    counts, and enabling telemetry changes no rank."""
    model = make_model(
        "DistMult", toy_dataset.num_entities, toy_dataset.num_relations,
        ModelConfig(dim=8, seed=3),
    )
    model.train_mode(False)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    triples = _query_rich_triples(toy_dataset)

    untraced = evaluator.evaluate(model, test_triples=triples)
    with scoped(Telemetry(enabled=True)) as single_t:
        single = evaluator.evaluate(model, test_triples=triples)
        single_counts = single_t.snapshot()["counters"]
    with scoped(Telemetry(enabled=True)) as sharded_t:
        sharded = evaluator.evaluate(
            model, test_triples=triples, n_workers=capped_workers(2)
        )
        sharded_counts = sharded_t.snapshot()["counters"]

    _assert_identical_results(untraced, single)   # telemetry never changes a rank
    _assert_identical_results(single, sharded)
    assert sharded_counts["eval.entries"] == single_counts["eval.entries"]
    assert sharded_counts["eval.ranked_targets"] == single_counts["eval.ranked_targets"]
    # The parent absorbed one eval.rank_shard span per worker shard.
    spans = [
        r for r in sharded_t.trace_records() if r["name"] == "eval.rank_shard"
    ]
    assert len(spans) == sharded_counts["eval.shards"]


# ---------------------------------------------------------------------------- worker cap fixture
def test_capped_workers_honours_env(monkeypatch, capped_workers):
    monkeypatch.setenv("REPRO_TEST_MAX_WORKERS", "2")
    assert capped_workers(8) == 2
    assert capped_workers(1) == 1
    monkeypatch.setenv("REPRO_TEST_MAX_WORKERS", "")
    assert capped_workers(8) == 8
