"""Regression tests: the batched evaluator must be bit-identical to the seed
per-triple protocol (kept behind ``evaluate(..., batched=False)``) for every
model family and for the rule/Cartesian/simple predictors, and must score each
unique ``(h, r)`` / ``(r, t)`` query exactly once per run."""

import numpy as np
import pytest

from repro.core.baselines import SimpleRuleModel
from repro.core.cartesian import CartesianProductPredictor
from repro.eval import LinkPredictionEvaluator
from repro.models import ModelConfig, make_model
from repro.models.registry import ALL_EMBEDDING_MODELS
from repro.rules.amie import AmieConfig, AmieMiner
from repro.rules.predictor import RuleBasedPredictor


def _assert_identical_results(reference, batched):
    assert len(reference.records) == len(batched.records)
    for expected, actual in zip(reference.records, batched.records):
        assert expected.triple == actual.triple
        assert expected.side == actual.side
        assert expected.raw_rank == actual.raw_rank, (expected, actual)
        assert expected.filtered_rank == actual.filtered_rank, (expected, actual)


def _query_rich_triples(dataset):
    """Every triple of the dataset — lots of shared (h, r) / (r, t) queries."""
    return list(dataset.train) + list(dataset.valid) + list(dataset.test)


@pytest.fixture(params=sorted(ALL_EMBEDDING_MODELS))
def embedding_model(request, toy_dataset):
    extra = {"embedding_height": 4} if request.param == "ConvE" else {}
    model = make_model(
        request.param,
        toy_dataset.num_entities,
        toy_dataset.num_relations,
        ModelConfig(dim=16, seed=7, extra=extra),
    )
    model.train_mode(False)
    return model


def test_embedding_models_batched_matches_per_triple(embedding_model, toy_dataset):
    evaluator = LinkPredictionEvaluator(toy_dataset)
    triples = _query_rich_triples(toy_dataset)
    reference = evaluator.evaluate(embedding_model, test_triples=triples, batched=False)
    batched = evaluator.evaluate(embedding_model, test_triples=triples, batched=True)
    _assert_identical_results(reference, batched)


@pytest.mark.parametrize("scorer_kind", ["amie", "simple", "cartesian"])
def test_rule_and_baseline_predictors_batched_matches_per_triple(scorer_kind, toy_dataset):
    if scorer_kind == "amie":
        rules = AmieMiner(toy_dataset.train, AmieConfig()).mine()
        scorer = RuleBasedPredictor(rules.rules, toy_dataset.train, toy_dataset.num_entities)
    elif scorer_kind == "simple":
        scorer = SimpleRuleModel(toy_dataset.train, toy_dataset.num_entities, threshold=0.5)
    else:
        scorer = CartesianProductPredictor(toy_dataset.train, toy_dataset.num_entities)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    triples = _query_rich_triples(toy_dataset)
    reference = evaluator.evaluate(scorer, test_triples=triples, batched=False)
    batched = evaluator.evaluate(scorer, test_triples=triples, batched=True)
    _assert_identical_results(reference, batched)


def test_results_independent_of_eval_batch_size(toy_dataset):
    model = make_model(
        "DistMult", toy_dataset.num_entities, toy_dataset.num_relations, ModelConfig(dim=8, seed=3)
    )
    model.train_mode(False)
    triples = _query_rich_triples(toy_dataset)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    baseline = evaluator.evaluate(model, test_triples=triples)
    for batch_size in (1, 2, 3, 1000):
        other = evaluator.evaluate(model, test_triples=triples, eval_batch_size=batch_size)
        _assert_identical_results(baseline, other)


class _CountingScorer:
    """Records every query the evaluator asks for, delegating to uniform scores."""

    name = "Counting"

    def __init__(self, num_entities):
        self.num_entities = num_entities
        self.tail_queries = []
        self.head_queries = []

    def score_all_tails(self, head, relation):
        raise AssertionError("batched contract must be preferred when present")

    def score_all_heads(self, relation, tail):
        raise AssertionError("batched contract must be preferred when present")

    def score_tails_batch(self, heads, relations):
        self.tail_queries.extend(zip(heads.tolist(), relations.tolist()))
        return np.zeros((len(heads), self.num_entities))

    def score_heads_batch(self, relations, tails):
        self.head_queries.extend(zip(relations.tolist(), tails.tolist()))
        return np.zeros((len(relations), self.num_entities))


@pytest.mark.parametrize("eval_batch_size", [2, 256])
def test_each_unique_query_scored_exactly_once(toy_dataset, eval_batch_size):
    triples = _query_rich_triples(toy_dataset)
    scorer = _CountingScorer(toy_dataset.num_entities)
    evaluator = LinkPredictionEvaluator(toy_dataset, eval_batch_size=eval_batch_size)
    evaluator.evaluate(scorer, test_triples=triples)
    unique_tail_queries = {(h, r) for h, r, _ in triples}
    unique_head_queries = {(r, t) for _, r, t in triples}
    assert len(scorer.tail_queries) == len(set(scorer.tail_queries)) == len(unique_tail_queries)
    assert len(scorer.head_queries) == len(set(scorer.head_queries)) == len(unique_head_queries)
    assert set(scorer.tail_queries) == unique_tail_queries
    assert set(scorer.head_queries) == unique_head_queries


class _ScalarOnlyScorer:
    """A third-party scorer implementing only the single-query contract."""

    name = "ScalarOnly"

    def __init__(self, triples, num_entities):
        self.triples = triples
        self.num_entities = num_entities

    def score_all_tails(self, head, relation):
        scores = np.zeros(self.num_entities)
        for tail in self.triples.tails_of(head, relation):
            scores[tail] = 1.0
        return scores

    def score_all_heads(self, relation, tail):
        scores = np.zeros(self.num_entities)
        for head in self.triples.heads_of(relation, tail):
            scores[head] = 1.0
        return scores


def test_scalar_only_scorers_still_work(toy_dataset):
    scorer = _ScalarOnlyScorer(toy_dataset.all_triples(), toy_dataset.num_entities)
    evaluator = LinkPredictionEvaluator(toy_dataset)
    triples = _query_rich_triples(toy_dataset)
    reference = evaluator.evaluate(scorer, test_triples=triples, batched=False)
    batched = evaluator.evaluate(scorer, test_triples=triples, batched=True)
    _assert_identical_results(reference, batched)
    filtered = batched.filtered_metrics()
    assert filtered.hits_at_1 == pytest.approx(1.0)
