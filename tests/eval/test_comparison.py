"""Tests for the cross-model comparison analyses (Tables 7-10, Figures 5-8)."""

import pytest

from repro.eval import (
    EvaluationResult,
    RankRecord,
    best_model_counts,
    category_best_model_breakdown,
    category_side_hits,
    outperformance_redundancy_share,
    per_relation_win_percentages,
)


def make_result(name, ranks):
    """ranks: list of (h, r, t, side, filtered_rank)."""
    result = EvaluationResult(model_name=name, dataset_name="synthetic")
    for h, r, t, side, rank in ranks:
        result.records.append(RankRecord(h, r, t, side, raw_rank=rank + 1, filtered_rank=rank))
    return result


@pytest.fixture()
def two_model_results():
    # Relation 0: model A is better; relation 1: model B is better.
    a = make_result(
        "A",
        [
            (0, 0, 1, "tail", 1), (2, 0, 3, "tail", 2),
            (0, 1, 1, "tail", 8), (2, 1, 3, "tail", 9),
        ],
    )
    b = make_result(
        "B",
        [
            (0, 0, 1, "tail", 5), (2, 0, 3, "tail", 6),
            (0, 1, 1, "tail", 1), (2, 1, 3, "tail", 2),
        ],
    )
    return {"A": a, "B": b}


def test_best_model_counts(two_model_results):
    counts = best_model_counts(two_model_results, metrics=("FMRR", "FMR"))
    assert counts["FMRR"]["A"] == 1
    assert counts["FMRR"]["B"] == 1
    assert counts["FMR"]["A"] == 1 and counts["FMR"]["B"] == 1


def test_best_model_counts_ties_award_everyone():
    a = make_result("A", [(0, 0, 1, "tail", 1)])
    b = make_result("B", [(0, 0, 1, "tail", 1)])
    counts = best_model_counts({"A": a, "B": b}, metrics=("FMRR",))
    assert counts["FMRR"]["A"] == 1 and counts["FMRR"]["B"] == 1


def test_best_model_counts_rejects_unknown_metric(two_model_results):
    with pytest.raises(KeyError):
        best_model_counts(two_model_results, metrics=("Bogus",))


def test_per_relation_win_percentages(two_model_results):
    matrix = per_relation_win_percentages(two_model_results)
    assert matrix[0]["A"] == pytest.approx(100.0)
    assert matrix[0]["B"] == pytest.approx(0.0)
    assert matrix[1]["B"] == pytest.approx(100.0)


def test_outperformance_redundancy_share():
    baseline = make_result("TransE", [(0, 0, 1, "tail", 15), (2, 0, 3, "tail", 15)])
    challenger = make_result("DistMult", [(0, 0, 1, "tail", 1), (2, 0, 3, "tail", 20)])
    redundant = {(0, 0, 1)}
    shares = outperformance_redundancy_share(
        {"TransE": baseline, "DistMult": challenger}, "TransE", redundant, metrics=("FMRR", "FHits@10")
    )
    # DistMult improves only on (0,0,1), which is redundant → 100 %.
    assert shares["DistMult"]["FMRR"] == pytest.approx(100.0)
    assert shares["DistMult"]["FHits@10"] == pytest.approx(100.0)


def test_outperformance_requires_baseline(two_model_results):
    with pytest.raises(KeyError):
        outperformance_redundancy_share(two_model_results, "Missing", set())


def test_category_best_model_breakdown(two_model_results):
    categories = {0: "1-1", 1: "n-m"}
    breakdown = category_best_model_breakdown(two_model_results, categories)
    assert breakdown["A"].get("1-1", 0) == 1
    assert breakdown["B"].get("n-m", 0) == 1


def test_category_side_hits(two_model_results):
    categories = {0: "1-1", 1: "n-m"}
    table = category_side_hits(two_model_results, categories)
    assert table["A"]["1-1"]["tail"] == pytest.approx(100.0)
    assert table["B"]["1-1"]["tail"] == pytest.approx(100.0)  # ranks 5 and 6 are ≤ 10
    # No head-side records exist → NaN.
    assert table["A"]["1-1"]["head"] != table["A"]["1-1"]["head"]
