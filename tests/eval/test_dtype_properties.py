"""Property tests for reduced-precision evaluation (satellite: eval dtypes).

Two guarantees worth pinning down with Hypothesis rather than examples:

1. **Well-separated scores are dtype-robust.**  When adjacent scores differ by
   more than the fp32 rounding error at their magnitude, casting the score row
   to fp32 before ranking cannot reorder or merge anything, so fp32 ranks are
   bit-identical to fp64 ranks — raw and filtered.
2. **Ties are mean-ranked identically under the fused kernel.**  The fused
   comparison-count path and the materializing ``mean_tie_ranks`` path must
   agree bitwise on arbitrarily tie-heavy rows, for every known-filter shape.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import ScoreComputeMixin, get_backend
from repro.kg import Dataset, TripleSet, Vocabulary
from repro.eval import evaluate_model, fused_rank_row
from repro.eval.sharding import mean_tie_ranks

BACKEND = get_backend("numpy")


# ---------------------------------------------------------------------------- strategies
def separated_rows(draw):
    """A score row whose distinct values survive an fp32 round-trip intact.

    Distinct integers scaled by a modest factor: adjacent values differ by at
    least ``scale`` (>= 0.5) while the fp32 ulp at the largest magnitude
    (~2e5) is ~0.015, so fp32 rounding can neither merge nor reorder them.
    """
    values = draw(
        st.lists(
            st.integers(min_value=-100_000, max_value=100_000),
            min_size=4,
            max_size=48,
            unique=True,
        )
    )
    scale = draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
    return np.array(values, dtype=np.float64) * scale


@st.composite
def separated_ranking_cases(draw):
    scores = separated_rows(draw)
    n = len(scores)
    targets = np.array(
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=4)), dtype=np.int64
    )
    known = draw(
        st.none()
        | st.lists(st.integers(0, n - 1), max_size=n, unique=True).map(
            lambda v: np.array(v, dtype=np.int64)
        )
    )
    return scores, targets, known


@st.composite
def tie_heavy_cases(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    modulus = draw(st.integers(min_value=1, max_value=4))  # few values => ties
    scores = np.array(
        draw(st.lists(st.integers(0, modulus), min_size=n, max_size=n)),
        dtype=np.float64,
    )
    targets = np.array(
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=5)), dtype=np.int64
    )
    known = draw(
        st.none()
        | st.lists(st.integers(0, n - 1), max_size=n, unique=True).map(
            lambda v: np.array(v, dtype=np.int64)
        )
    )
    return scores, targets, known


# ---------------------------------------------------------------------------- property 1: fp32 rank stability
@settings(max_examples=200, deadline=None)
@given(case=separated_ranking_cases())
def test_fp32_ranks_match_fp64_on_well_separated_scores(case):
    scores, targets, known = case
    raw64, filtered64 = mean_tie_ranks(scores, targets, known)
    demoted = scores.astype(np.float32).astype(np.float64)
    raw32, filtered32 = fused_rank_row(BACKEND, demoted, targets, known)
    np.testing.assert_array_equal(raw32, raw64)
    np.testing.assert_array_equal(filtered32, filtered64)


@settings(max_examples=100, deadline=None)
@given(case=separated_ranking_cases())
def test_fp16_ranks_match_fp64_when_separation_survives_fp16(case):
    scores, targets, known = case
    with np.errstate(over="ignore"):  # fp16 overflow to inf is fine: guarded below
        demoted = scores.astype(np.float16).astype(np.float64)
    # fp16 has ~3 decimal digits; only assert when the cast kept all values
    # distinct, i.e. the row is genuinely fp16-separated.
    if len(np.unique(demoted)) != len(np.unique(scores)):
        return
    order64 = np.argsort(scores, kind="stable")
    order16 = np.argsort(demoted, kind="stable")
    if not np.array_equal(order64, order16):
        return
    raw64, filtered64 = mean_tie_ranks(scores, targets, known)
    raw16, filtered16 = fused_rank_row(BACKEND, demoted, targets, known)
    np.testing.assert_array_equal(raw16, raw64)
    np.testing.assert_array_equal(filtered16, filtered64)


# ---------------------------------------------------------------------------- property 2: tie handling
@settings(max_examples=300, deadline=None)
@given(case=tie_heavy_cases())
def test_ties_mean_ranked_identically_under_fused_kernel(case):
    scores, targets, known = case
    raw_ref, filtered_ref = mean_tie_ranks(scores, targets, known)
    raw_fused, filtered_fused = fused_rank_row(BACKEND, scores, targets, known)
    np.testing.assert_array_equal(raw_fused, raw_ref)
    np.testing.assert_array_equal(filtered_fused, filtered_ref)


@settings(max_examples=150, deadline=None)
@given(case=tie_heavy_cases())
def test_tie_handling_is_dtype_invariant_for_small_integer_scores(case):
    scores, targets, known = case  # integer-valued in [0, 4]: exact in fp16
    raw_ref, filtered_ref = mean_tie_ranks(scores, targets, known)
    for dtype in (np.float32, np.float16):
        demoted = scores.astype(dtype).astype(np.float64)
        raw, filtered = fused_rank_row(BACKEND, demoted, targets, known)
        np.testing.assert_array_equal(raw, raw_ref)
        np.testing.assert_array_equal(filtered, filtered_ref)


# ---------------------------------------------------------------------------- end-to-end fp32 evaluation
class _IntegerTableScorer(ScoreComputeMixin):
    """Scorer over an integer-valued table: exact in fp32, so the fp32 eval
    path must reproduce the fp64 metrics bit-for-bit through the real
    ``EvalCompute`` cast/export machinery."""

    name = "IntegerTable"

    def __init__(self, num_entities: int, seed: int = 0) -> None:
        self.num_entities = num_entities
        rng = np.random.default_rng(seed)
        self.tables = {
            side: rng.integers(0, 7, size=(16, num_entities)).astype(np.float64)
            for side in ("tail", "head")
        }

    def _rows(self, table: np.ndarray, index: np.ndarray) -> np.ndarray:
        compute = self.score_compute
        resident = compute.export(table)
        rows = compute.as_numpy(resident)[index % len(table)]
        return np.asarray(rows, dtype=np.float64)

    def score_tails_batch(self, heads, relations) -> np.ndarray:
        index = np.asarray(heads) * 3 + np.asarray(relations)
        return self._rows(self.tables["tail"], index)

    def score_heads_batch(self, relations, tails) -> np.ndarray:
        index = np.asarray(relations) * 5 + np.asarray(tails)
        return self._rows(self.tables["head"], index)

    def score_all_tails(self, head: int, relation: int) -> np.ndarray:
        return self.score_tails_batch(np.array([head]), np.array([relation]))[0]

    def score_all_heads(self, relation: int, tail: int) -> np.ndarray:
        return self.score_heads_batch(np.array([relation]), np.array([tail]))[0]


@pytest.fixture()
def integer_dataset():
    n = 10
    vocab = Vocabulary.from_labels(
        [f"e{i}" for i in range(n)], ["r0", "r1"]
    )
    train = TripleSet([(0, 0, 1), (1, 0, 2), (3, 1, 4), (5, 1, 6)])
    valid = TripleSet([(2, 0, 3)])
    test = TripleSet([(4, 0, 5), (6, 1, 7), (8, 1, 9)])
    return Dataset("integer-toy", vocab, train, valid, test)


@pytest.mark.parametrize("eval_dtype", ["fp32", "fp16"])
def test_fp_reduced_evaluation_metrics_identical_on_integer_scores(
    eval_dtype, integer_dataset
):
    scorer = _IntegerTableScorer(integer_dataset.num_entities)
    reference = evaluate_model(scorer, integer_dataset)
    scorer.set_score_backend("numpy", "fp64")  # reset between runs
    reduced = evaluate_model(scorer, integer_dataset, eval_dtype=eval_dtype)
    assert len(reference.records) == len(reduced.records)
    for expected, actual in zip(reference.records, reduced.records):
        assert expected.raw_rank == actual.raw_rank
        assert expected.filtered_rank == actual.filtered_rank
