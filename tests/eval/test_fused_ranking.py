"""Fused score+rank path vs the materializing evaluator.

The contract: for any ``score_block_budget`` — including a pathological
budget of one element per block — the fused path produces **bit-identical**
raw and filtered ranks to the materializing path, because both reduce to the
same exact comparison counts.  Block size is purely a memory knob.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.backend import get_backend
from repro.core.baselines import SimpleRuleModel
from repro.core.cartesian import CartesianProductPredictor
from repro.eval import LinkPredictionEvaluator, evaluate_model, fused_rank_row
from repro.eval.sharding import mean_tie_ranks
from repro.models import ModelConfig, make_model
from repro.models.registry import ALL_EMBEDDING_MODELS

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker path only exercised under fork here",
)

BUDGETS = [1, 1_000, 50_000]


def _assert_identical_results(reference, other):
    assert len(reference.records) == len(other.records)
    for expected, actual in zip(reference.records, other.records):
        assert (expected.triple, expected.side) == (actual.triple, actual.side)
        assert expected.raw_rank == actual.raw_rank, (expected, actual)
        assert expected.filtered_rank == actual.filtered_rank, (expected, actual)


def _embedding_scorer(name, dataset, seed=11):
    extra = {"embedding_height": 4} if name == "ConvE" else {}
    model = make_model(
        name,
        dataset.num_entities,
        dataset.num_relations,
        ModelConfig(dim=16, seed=seed, extra=extra),
    )
    model.train_mode(False)
    return model


# ---------------------------------------------------------------------------- row primitive
def test_fused_rank_row_matches_mean_tie_ranks_bitwise():
    rng = np.random.default_rng(7)
    backend = get_backend("numpy")
    scores = rng.integers(0, 6, size=64).astype(np.float64)  # heavy ties
    targets = np.array([0, 5, 5, 63, 17])
    for known in (None, np.array([], dtype=np.int64), np.array([5, 12, 17, 40])):
        raw_fused, filtered_fused = fused_rank_row(backend, scores, targets, known)
        raw_ref, filtered_ref = mean_tie_ranks(scores, targets, known)
        np.testing.assert_array_equal(raw_fused, raw_ref)
        np.testing.assert_array_equal(filtered_fused, filtered_ref)


def test_fused_rank_row_adds_back_target_in_known_set():
    # When the target itself appears among the known entities, filtering must
    # not subtract it from its own tie group.
    backend = get_backend("numpy")
    scores = np.array([3.0, 1.0, 3.0, 3.0, 0.0])
    targets = np.array([2])
    known = np.array([0, 2])  # one tied competitor filtered, target re-added
    raw, filtered = fused_rank_row(backend, scores, targets, known)
    raw_ref, filtered_ref = mean_tie_ranks(scores, targets, known)
    np.testing.assert_array_equal(raw, raw_ref)
    np.testing.assert_array_equal(filtered, filtered_ref)


# ---------------------------------------------------------------------------- full-metric identity
@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("name", ALL_EMBEDDING_MODELS)
def test_fused_evaluation_identical_for_embedding_models(name, budget, toy_dataset):
    scorer = _embedding_scorer(name, toy_dataset)
    reference = evaluate_model(scorer, toy_dataset)
    fused = evaluate_model(scorer, toy_dataset, score_block_budget=budget)
    _assert_identical_results(reference, fused)


@pytest.mark.parametrize("budget", BUDGETS)
def test_fused_evaluation_identical_for_rule_scorers(budget, toy_dataset):
    scorers = [
        SimpleRuleModel(toy_dataset.train, toy_dataset.num_entities, threshold=0.5),
        CartesianProductPredictor(toy_dataset.train, toy_dataset.num_entities),
    ]
    for scorer in scorers:
        reference = evaluate_model(scorer, toy_dataset)
        fused = evaluate_model(scorer, toy_dataset, score_block_budget=budget)
        _assert_identical_results(reference, fused)


def test_explicit_none_budget_uses_materializing_path(toy_dataset):
    scorer = _embedding_scorer("DistMult", toy_dataset)
    evaluator = LinkPredictionEvaluator(toy_dataset, score_block_budget=4096)
    overridden = evaluator.evaluate(scorer, score_block_budget=None)
    reference = evaluate_model(scorer, toy_dataset)
    _assert_identical_results(reference, overridden)


def test_evaluator_level_budget_is_the_default(toy_dataset):
    scorer = _embedding_scorer("ComplEx", toy_dataset)
    evaluator = LinkPredictionEvaluator(toy_dataset, score_block_budget=1)
    fused = evaluator.evaluate(scorer)
    reference = evaluate_model(scorer, toy_dataset)
    _assert_identical_results(reference, fused)


# ---------------------------------------------------------------------------- worker path
@requires_fork
@pytest.mark.parametrize("budget", [1, 50_000])
def test_fused_evaluation_identical_across_workers(budget, toy_dataset):
    scorer = _embedding_scorer("TransE", toy_dataset)
    reference = evaluate_model(scorer, toy_dataset)
    fused = evaluate_model(
        scorer, toy_dataset, n_workers=2, score_block_budget=budget
    )
    _assert_identical_results(reference, fused)
