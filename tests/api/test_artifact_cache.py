"""Disk-cache tests: cold/warm bit-identity, invalidation hygiene, crash
safety (torn writes, corrupt payloads, stale locks), and concurrent sharing."""

import json
import pickle
import threading

import pytest

from repro.api import DiskArtifactStore, ExperimentSpec, Runner
from repro.api.artifacts import ENTRY_MANIFEST, default_cache_dir
from repro.telemetry import scoped


def _tiny_spec():
    spec = ExperimentSpec(
        name="cache-tiny",
        datasets=["WN18RR-like"],
        models=["DistMult"],
        include_amie=False,
    )
    spec.model.dim = 8
    spec.training.epochs = 2
    return spec


def _entry_dirs(store):
    """Real entry directories under the store root (no dot-dirs, no temps)."""
    return sorted(
        child
        for child in store.root.iterdir()
        if child.is_dir() and not child.name.startswith(".")
    )


# ------------------------------------------------------------------ basics
def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"


def test_put_get_round_trip_survives_process_restart(tmp_path):
    store = DiskArtifactStore("feedface", cache_dir=tmp_path)
    store.put(("redundancy", "toy"), {"pairs": [1, 2, 3]})
    assert store.stats["write"] == 1

    # A "new process": fresh store over the same directory, empty memory.
    reborn = DiskArtifactStore("feedface", cache_dir=tmp_path)
    assert ("redundancy", "toy") in reborn
    assert reborn[("redundancy", "toy")] == {"pairs": [1, 2, 3]}
    assert reborn.stats == {"hit": 1, "miss": 0, "write": 0, "evict": 0}
    # The second read comes from the in-memory layer: no second hit.
    assert reborn[("redundancy", "toy")] == {"pairs": [1, 2, 3]}
    assert reborn.stats["hit"] == 1


def test_ensure_builds_once_across_store_instances(tmp_path):
    built = []

    def build():
        built.append(1)
        return "value"

    first = DiskArtifactStore("abc", cache_dir=tmp_path)
    assert first.ensure(("categories", "toy"), build) == "value"
    second = DiskArtifactStore("abc", cache_dir=tmp_path)
    assert second.ensure(("categories", "toy"), build) == "value"
    assert built == [1]
    assert second.stats["miss"] == 0


def test_fingerprints_partition_the_cache(tmp_path):
    a = DiskArtifactStore("aaaa", cache_dir=tmp_path)
    b = DiskArtifactStore("bbbb", cache_dir=tmp_path)
    a.put(("categories", "toy"), "A")
    assert ("categories", "toy") not in b
    assert a.root != b.root and a.root.parent == b.root.parent


def test_telemetry_kind_is_ephemeral(tmp_path):
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    store.put(("telemetry", "trace"), [{"name": "x"}])
    assert store.stats["write"] == 0
    assert _entry_dirs(store) == []
    # Still readable from memory, invisible to a sibling store.
    assert store[("telemetry", "trace")] == [{"name": "x"}]
    assert ("telemetry", "trace") not in DiskArtifactStore("abc", cache_dir=tmp_path)


def test_counters_reach_the_telemetry_facade(tmp_path):
    from repro.telemetry import configure, get_telemetry

    with scoped():
        configure(enabled=True)
        store = DiskArtifactStore("abc", cache_dir=tmp_path)
        store.get(("categories", "toy"))          # miss
        store.put(("categories", "toy"), "v")     # write
        DiskArtifactStore("abc", cache_dir=tmp_path).get(("categories", "toy"))  # hit
        store.drop_dataset("toy")                 # evict
        counters = get_telemetry().snapshot()["counters"]
    assert counters["cache.artifacts.miss"] == 1
    assert counters["cache.artifacts.write"] == 1
    assert counters["cache.artifacts.hit"] == 1
    assert counters["cache.artifacts.evict"] == 1


# ------------------------------------------------------------------ invalidation
def test_drop_dataset_returns_sorted_keys_and_leaves_no_orphans(tmp_path):
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    for key in [
        ("scorer", "m", "toy"), ("dataset", "toy"), ("redundancy", "toy"),
        ("evaluation", "m", "toy"), ("dataset", "other"), ("snapshot",),
    ]:
        store.put(key, f"payload-{key}")
    dropped = store.drop_dataset("toy")
    assert dropped == sorted(dropped)
    assert dropped == [
        ("dataset", "toy"), ("evaluation", "m", "toy"),
        ("redundancy", "toy"), ("scorer", "m", "toy"),
    ]
    # Only the surviving entries' directories remain on disk — the
    # invalidation left no orphaned directories behind.
    survivors = {store._entry_dir(("dataset", "other")), store._entry_dir(("snapshot",))}
    assert set(_entry_dirs(store)) == survivors
    assert store.keys() == [("dataset", "other"), ("snapshot",)]


def test_drop_dataset_invalidates_other_processes_entries(tmp_path):
    """The generation stamp invalidates entries this store never saw."""
    writer = DiskArtifactStore("abc", cache_dir=tmp_path)
    writer.put(("redundancy", "toy"), "old-analysis")

    invalidator = DiskArtifactStore("abc", cache_dir=tmp_path)
    invalidator.drop_dataset("toy")

    # The writer's memory copy is its own business, but a fresh reader
    # (any process probing the directory) must treat the entry as gone.
    reader = DiskArtifactStore("abc", cache_dir=tmp_path)
    assert ("redundancy", "toy") not in reader
    assert reader.get(("redundancy", "toy"), "rebuilt") == "rebuilt"
    assert reader.stats["miss"] >= 1
    # Re-writing under the new generation makes it servable again.
    reader.put(("redundancy", "toy"), "new-analysis")
    assert DiskArtifactStore("abc", cache_dir=tmp_path)[("redundancy", "toy")] == "new-analysis"


# ------------------------------------------------------------------ crash safety
def test_truncated_payload_is_quarantined_and_rebuilt(tmp_path):
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    store.put(("categories", "toy"), {"full": "payload"})
    entry = store._entry_dir(("categories", "toy"))
    payload = entry / "payload.pkl"
    payload.write_bytes(payload.read_bytes()[:-7])  # simulate a torn write

    victim = DiskArtifactStore("abc", cache_dir=tmp_path)
    rebuilt = victim.ensure(("categories", "toy"), lambda: {"full": "payload"})
    assert rebuilt == {"full": "payload"}
    assert victim.stats["miss"] == 1 and victim.stats["evict"] == 1
    # The corrupt entry moved to quarantine (evidence kept, never served).
    quarantined = list((victim.root / ".quarantine").iterdir())
    assert len(quarantined) == 1
    # And the rebuilt entry is healthy.
    assert DiskArtifactStore("abc", cache_dir=tmp_path)[("categories", "toy")] == {
        "full": "payload"
    }


def test_manifest_tamper_is_detected_by_sha256(tmp_path):
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    store.put(("categories", "toy"), "honest")
    entry = store._entry_dir(("categories", "toy"))
    (entry / "payload.pkl").write_bytes(pickle.dumps("tampered"))

    victim = DiskArtifactStore("abc", cache_dir=tmp_path)
    assert victim.get(("categories", "toy"), "fallback") == "fallback"
    assert victim.stats == {"hit": 0, "miss": 1, "write": 0, "evict": 1}


def test_entry_without_manifest_is_a_torn_write(tmp_path):
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    store.put(("categories", "toy"), "value")
    entry = store._entry_dir(("categories", "toy"))
    (entry / ENTRY_MANIFEST).unlink()

    victim = DiskArtifactStore("abc", cache_dir=tmp_path)
    assert ("categories", "toy") not in victim
    assert victim.get(("categories", "toy"), None) is None
    assert victim.stats["evict"] == 1  # quarantined on sight


def test_leftover_tmp_directories_are_ignored_everywhere(tmp_path):
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    store.put(("categories", "toy"), "value")
    # A writer killed mid-serialization leaves a .tmp- sibling behind.
    abandoned = store.root / f"{store._entry_name(('categories', 'toy'))}.tmp-999-dead"
    abandoned.mkdir()
    (abandoned / "payload.pkl").write_bytes(b"half a pickle")

    fresh = DiskArtifactStore("abc", cache_dir=tmp_path)
    assert fresh.keys() == [("categories", "toy")]
    assert fresh[("categories", "toy")] == "value"
    assert fresh.drop(lambda key: True) == [("categories", "toy")]


def test_stale_lock_file_does_not_block_anyone(tmp_path):
    """flock evaporates with its holder: a leftover lock file is inert."""
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    lock_path = store._locks_dir / (store._entry_name(("categories", "toy")) + ".lock")
    lock_path.touch()  # "stale" lock from a dead process
    assert store.ensure(("categories", "toy"), lambda: "built") == "built"
    assert DiskArtifactStore("abc", cache_dir=tmp_path)[("categories", "toy")] == "built"


def test_unknown_manifest_format_is_quarantined(tmp_path):
    store = DiskArtifactStore("abc", cache_dir=tmp_path)
    store.put(("categories", "toy"), "value")
    entry = store._entry_dir(("categories", "toy"))
    manifest = json.loads((entry / ENTRY_MANIFEST).read_text())
    manifest["format"] = "carrier-pigeon"
    (entry / ENTRY_MANIFEST).write_text(json.dumps(manifest))

    victim = DiskArtifactStore("abc", cache_dir=tmp_path)
    assert victim.get(("categories", "toy"), None) is None
    assert victim.stats["evict"] == 1


def test_corrupted_model_artifact_is_quarantined_and_rebuilt(tmp_path):
    """A scorer entry uses the ModelArtifact format; flipping bytes in a
    parameter file must trip its verification, not serve garbage ranks."""
    spec = _tiny_spec()
    runner = Runner(spec, cache_dir=tmp_path)
    runner.run(stages=["train"])
    store = runner.store
    key = ("scorer", "DistMult", "WN18RR-like")
    entry = store._entry_dir(key)
    manifest = json.loads((entry / ENTRY_MANIFEST).read_text())
    assert manifest["format"] == "model-artifact"
    weights = sorted((entry / "model").glob("*.npy"))[0]
    raw = bytearray(weights.read_bytes())
    raw[-64:] = b"\xff" * 64
    weights.write_bytes(bytes(raw))

    victim = Runner(spec, cache_dir=tmp_path)
    report = victim.run(stages=["train"])
    assert victim.store.stats["evict"] >= 1
    assert victim.store.stats["write"] >= 1  # recomputed and re-persisted
    # The rebuilt scorer is healthy and mmap-loadable.
    healthy = Runner(spec, cache_dir=tmp_path)
    healthy.run(stages=["train"])
    assert healthy.store.stats["evict"] == 0


# ------------------------------------------------------------------ concurrency
def test_concurrent_ensure_builds_exactly_once(tmp_path):
    builds = []
    barrier = threading.Barrier(4)
    results = []

    def worker():
        store = DiskArtifactStore("abc", cache_dir=tmp_path)

        def build():
            builds.append(threading.get_ident())
            return {"expensive": True}

        barrier.wait()
        results.append(store.ensure(("categories", "toy"), build))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(builds) == 1  # exactly one of four raced builders computed
    assert all(result == {"expensive": True} for result in results)


def test_concurrent_runs_share_one_cache_bit_identically(tmp_path):
    """Two full pipeline runs racing on one cache directory both finish,
    produce bit-identical rows, and at least one side reuses shared work."""
    spec = _tiny_spec()
    reports = {}
    errors = []

    def race(slot):
        try:
            with scoped():
                reports[slot] = Runner(spec, cache_dir=tmp_path).run()
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append((slot, error))

    threads = [threading.Thread(target=race, args=(slot,)) for slot in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert reports[0].rows == reports[1].rows
    # A serial run over the same directory replays it all from cache.
    follow_up = Runner(spec, cache_dir=tmp_path)
    replay = follow_up.run()
    assert replay.rows == reports[0].rows
    assert follow_up.store.stats["miss"] == 0
    assert all(stage.produced == [] for stage in replay.stages)


# ------------------------------------------------------------------ pipeline acceptance
def test_cold_and_warm_runs_are_bit_identical_with_zero_recompute(tmp_path):
    spec = _tiny_spec()
    cold_runner = Runner(spec, cache_dir=tmp_path)
    cold = cold_runner.run()
    assert cold_runner.store.stats["write"] > 0

    warm_runner = Runner(spec, cache_dir=tmp_path)
    warm = warm_runner.run()
    # Zero recompute: nothing missed, nothing written, nothing produced.
    assert warm_runner.store.stats["miss"] == 0
    assert warm_runner.store.stats["write"] == 0
    assert all(stage.produced == [] for stage in warm.stages)
    # Bit-identical results, and the traffic is surfaced on the report.
    assert warm.rows == cold.rows
    assert warm.text == cold.text
    assert warm.telemetry["cache"]["miss"] == 0
    assert warm.telemetry["cache"]["hit"] > 0


def test_cache_span_and_counters_land_in_the_trace(tmp_path):
    from repro.telemetry import read_trace_jsonl

    spec = _tiny_spec()
    spec.telemetry.enabled = True
    spec.telemetry.trace_path = str(tmp_path / "run.trace.jsonl")
    with scoped():
        report = Runner(spec, cache_dir=tmp_path / "cache").run()
    assert report.telemetry["cache"]["write"] > 0
    records = read_trace_jsonl(tmp_path / "run.trace.jsonl")
    spans = {record["name"]: record for record in records}
    assert "pipeline.cache" in spans
    attributes = spans["pipeline.cache"]["attrs"]
    assert attributes["write"] == report.telemetry["cache"]["write"]
    assert attributes["miss"] == report.telemetry["cache"]["miss"]
    counters = report.telemetry["metrics"]["counters"]
    assert counters["cache.artifacts.write"] == report.telemetry["cache"]["write"]


def test_scorer_entries_reload_as_mmap_backed_models(tmp_path):
    spec = _tiny_spec()
    Runner(spec, cache_dir=tmp_path).run(stages=["train"])
    warm = Runner(spec, cache_dir=tmp_path)
    warm.run(stages=["train"])
    scorer = warm.store[("scorer", "DistMult", "WN18RR-like")]
    # Reloaded through ModelArtifact: read-only mmap parameters plus the
    # artifact directory pointer sharded evaluation ships to workers.
    assert getattr(scorer, "_artifact_dir", None) is not None
    parameter = next(iter(scorer.parameters().values()))
    assert parameter.data.flags.writeable is False
