"""Pipeline-layer tests: the artifact store, the staged runner, and the
bit-identity contract between a spec run and the legacy Workbench path."""

import numpy as np
import pytest

from repro.api import ArtifactStore, ExperimentSpec, Runner
from repro.api.spec import SpecValidationError
from repro.experiments import ExperimentConfig, Workbench
from repro.telemetry import read_trace_jsonl, scoped


def _tiny_spec(**training):
    spec = ExperimentSpec(
        name="pipeline-tiny",
        datasets=["WN18RR-like"],
        models=["DistMult"],
        include_amie=False,
    )
    spec.model.dim = 8
    spec.training.epochs = 2
    for key, value in training.items():
        setattr(spec.training, key, value)
    return spec


# ------------------------------------------------------------------ artifact store
def test_store_put_get_ensure_and_keys():
    store = ArtifactStore("abc")
    assert store.fingerprint == "abc"
    store.put(("dataset", "x"), 1)
    assert ("dataset", "x") in store and store[("dataset", "x")] == 1
    built = []
    assert store.ensure(("dataset", "x"), lambda: built.append(1)) == 1
    assert built == []  # cached: the builder never ran
    assert store.ensure(("scorer", "m", "x"), lambda: "s") == "s"
    assert store.keys("dataset") == [("dataset", "x")]
    assert len(store) == 2


def test_store_drop_dataset_drops_derived_artifacts():
    store = ArtifactStore()
    for key in [
        ("dataset", "a"), ("redundancy", "a"), ("leakage", "a"), ("categories", "a"),
        ("scorer", "m", "a"), ("evaluation", "m", "a"),
        ("dataset", "b"), ("scorer", "m", "b"), ("snapshot",),
    ]:
        store.put(key, object())
    dropped = store.drop_dataset("a")
    assert len(dropped) == 6
    assert sorted(store.keys()) == [("dataset", "b"), ("scorer", "m", "b"), ("snapshot",)]


# ------------------------------------------------------------------ runner mechanics
def test_runner_rejects_invalid_specs():
    spec = _tiny_spec()
    spec.models = ["TranE"]
    with pytest.raises(SpecValidationError, match="TransE"):
        Runner(spec)


def test_runner_rejects_mismatched_store():
    spec = _tiny_spec()
    stale = ArtifactStore("feedfacefeedface")
    with pytest.raises(ValueError, match="fingerprints"):
        Runner(spec, store=stale)
    # An unstamped (legacy/empty) store is adopted and stamped.
    fresh = ArtifactStore()
    runner = Runner(spec, store=fresh)
    assert fresh.fingerprint == spec.fingerprint()
    assert runner.store is fresh


def test_runner_rejects_unknown_stage_names():
    runner = Runner(_tiny_spec())
    with pytest.raises(ValueError, match="unknown stage"):
        runner.run(stages=["train", "fly"])


def test_runner_reuses_artifacts_across_runs():
    spec = _tiny_spec()
    runner = Runner(spec)
    first = runner.run()
    scorer = runner.store[("scorer", "DistMult", "WN18RR-like")]
    second = Runner(spec, store=runner.store).run()
    assert runner.store[("scorer", "DistMult", "WN18RR-like")] is scorer
    # Nothing new was produced on the second pass.
    assert all(stage.produced == [] for stage in second.stages)
    assert second.rows == first.rows


def test_runner_stage_subset_and_report_shape():
    runner = Runner(_tiny_spec())
    report = runner.run(stages=["evaluate", "report"])  # builders pull prerequisites
    assert [stage.name for stage in report.stages] == ["evaluate", "report"]
    assert report.fingerprint == runner.store.fingerprint
    rows = report.rows["WN18RR-like"]
    assert [row["model"] for row in rows] == ["DistMult"]
    assert "Link prediction on WN18RR-like" in report.text
    assert report.stage("evaluate").seconds > 0
    with pytest.raises(KeyError):
        report.stage("train")


# ------------------------------------------------------------------ bit-identity
def test_spec_run_is_bit_identical_to_workbench():
    """The acceptance contract: same knobs => bit-identical metrics."""
    spec = ExperimentSpec(
        name="parity",
        datasets=["WN18-like", "WN18RR-like"],
        models=["TransE", "DistMult"],
        include_amie=True,
    )
    spec.model.dim = 8
    spec.training.epochs = 3
    report = Runner(spec).run()

    workbench = Workbench(
        ExperimentConfig(dim=8, epochs=3, models=("TransE", "DistMult"))
    )
    for dataset_name in spec.datasets:
        for row in report.rows[dataset_name]:
            legacy = workbench.evaluation(row["model"], dataset_name).as_row()
            assert dict(row) == dict(legacy), (row["model"], dataset_name)


def test_per_model_override_changes_only_that_model():
    spec = _tiny_spec()
    spec.models = ["TransE", "DistMult"]
    spec.overrides = {"models": {"TransE": {"training": {"epochs": 1}}}}
    runner = Runner(spec)
    runner.run(stages=["train"])
    # Equivalent manual runs: DistMult trained with the global 2 epochs,
    # TransE with the overridden single epoch.
    base = Workbench(ExperimentConfig(dim=8, epochs=2, models=("DistMult",)))
    patched = Workbench(ExperimentConfig(dim=8, epochs=1, models=("TransE",)))
    for model_name, reference in (("DistMult", base), ("TransE", patched)):
        ours = runner.store[("scorer", model_name, "WN18RR-like")]
        theirs = reference.scorer(model_name, "WN18RR-like")
        for name, parameter in theirs.parameters().items():
            assert np.array_equal(parameter.data, ours.parameters()[name].data), (
                model_name, name,
            )


# ------------------------------------------------------------------ source ingestion
def test_runner_ingests_audits_and_deredundifies_a_source(tmp_path, toy_dataset):
    from repro.kg import save_dataset

    directory = save_dataset(toy_dataset, tmp_path / "toy")
    spec = ExperimentSpec(
        name="source-run",
        datasets=["toy", "toy-deredundant"],
        models=["DistMult"],
        include_amie=False,
        stages=["ingest", "audit", "deredundify", "train", "evaluate", "report"],
    )
    spec.dataset.source = str(directory)
    spec.dataset.source_name = "toy"
    spec.model.dim = 8
    spec.training.epochs = 1
    spec.ingest.chunk_size = 4

    runner = Runner(spec)
    report = runner.run()
    store = runner.store
    assert ("dataset", "toy") in store and ("dataset", "toy-deredundant") in store
    assert store[("ingest_report", "toy")].chunk_size == 4
    # The audit found the toy dataset's reverse pair; the transform removed it.
    assert store[("redundancy", "toy")].reverse_pairs
    assert len(store[("dataset", "toy-deredundant")].train) < len(toy_dataset.train)
    assert {row["model"] for row in report.rows["toy-deredundant"]} == {"DistMult"}
    assert "Audit of toy" in report.text
    # The derived dataset is audited in the SAME run (deredundify backfills
    # the audit stage that necessarily ran before it) ...
    assert ("redundancy", "toy-deredundant") in store
    assert "Audit of toy-deredundant" in report.text
    # ... and a second run over the same store reuses everything, including
    # the derived dataset's scorers (no register_dataset eviction).
    scorer = store[("scorer", "DistMult", "toy-deredundant")]
    second = Runner(spec, store=store).run()
    assert store[("scorer", "DistMult", "toy-deredundant")] is scorer
    assert all(stage.produced == [] for stage in second.stages)


def test_runner_stage_subset_pulls_the_source_on_demand(tmp_path, toy_dataset):
    """run(stages=["train"]) on a source spec must not KeyError: the source
    (and its listed derived variant) are materialized on demand."""
    from repro.kg import save_dataset

    directory = save_dataset(toy_dataset, tmp_path / "toy")
    spec = ExperimentSpec(
        name="subset-source",
        datasets=["toy", "toy-deredundant"],
        models=["DistMult"],
        include_amie=False,
        stages=["ingest", "audit", "deredundify", "train", "evaluate", "report"],
    )
    spec.dataset.source = str(directory)
    spec.dataset.source_name = "toy"
    spec.model.dim = 8
    spec.training.epochs = 1

    runner = Runner(spec)
    report = runner.run(stages=["evaluate"])
    assert ("dataset", "toy") in runner.store
    assert ("dataset", "toy-deredundant") in runner.store
    assert set(report.rows) == {"toy", "toy-deredundant"}


def test_dataset_construction_ignores_audit_overrides_for_any_stage_subset():
    """Construction always uses the global config: an [overrides.datasets.*.audit]
    patch changes the audit thresholds, never how the replica is built."""
    spec = ExperimentSpec(
        name="construction-determinism",
        datasets=["YAGO3-10-like-DR"],
        models=[],
        include_amie=False,
        overrides={"datasets": {"YAGO3-10-like-DR": {"audit": {"yago_theta": 0.95}}}},
    )
    via_ingest = Runner(spec)
    via_ingest.run(stages=["ingest"])
    via_audit = Runner(spec)
    via_audit.run(stages=["audit"])  # builds the dataset on demand
    built_a = via_ingest.store[("dataset", "YAGO3-10-like-DR")]
    built_b = via_audit.store[("dataset", "YAGO3-10-like-DR")]
    assert list(built_a.train) == list(built_b.train)
    assert built_a.num_relations == built_b.num_relations
    # The override still reaches the audit itself.
    assert via_audit.spec.config_for(dataset="YAGO3-10-like-DR").yago_theta == 0.95


# ------------------------------------------------------------------ workbench shim
def test_workbench_exposes_and_shares_the_artifact_store():
    config = ExperimentConfig(dim=8, epochs=1, models=("DistMult",))
    workbench = Workbench(config)
    assert isinstance(workbench.artifacts, ArtifactStore)
    dataset = workbench.dataset("WN18RR-like")
    assert workbench.artifacts[("dataset", "WN18RR-like")] is dataset
    evaluation = workbench.evaluation("DistMult", "WN18RR-like")
    assert workbench.artifacts[("evaluation", "DistMult", "WN18RR-like")] is evaluation

    # A second Workbench over the same store reuses every artifact.
    sibling = Workbench(config, store=workbench.artifacts)
    assert sibling.dataset("WN18RR-like") is dataset
    assert sibling.evaluation("DistMult", "WN18RR-like") is evaluation


# ------------------------------------------------------------------ telemetry
def test_telemetry_run_traces_every_stage_and_changes_no_rank(tmp_path):
    """The observability acceptance contract: an instrumented run produces a
    trace covering every executed stage plus a metrics snapshot spanning
    ingest, training, evaluation and the rule predictor's cache — while the
    spec fingerprint and every reported metric stay bit-identical to the
    telemetry-off run."""

    def make_spec():
        spec = ExperimentSpec(
            name="telemetry-tiny",
            datasets=["WN18-like"],
            models=["TransE"],
            include_amie=True,   # AMIE's predictor drives the cache.rules.* series
        )
        spec.model.dim = 8
        spec.training.epochs = 2
        return spec

    with scoped():  # isolate the process-global telemetry handle
        baseline = Runner(make_spec()).run()

    traced_spec = make_spec()
    traced_spec.telemetry.enabled = True
    traced_spec.telemetry.profile = True
    traced_spec.telemetry.trace_path = str(tmp_path / "run.trace.jsonl")
    assert traced_spec.fingerprint() == make_spec().fingerprint()
    with scoped():
        runner = Runner(traced_spec)
        traced = runner.run()

    # Observability never perturbs the experiment.
    assert traced.fingerprint == baseline.fingerprint
    for row, reference in zip(traced.rows["WN18-like"], baseline.rows["WN18-like"]):
        assert dict(row) == dict(reference)

    telemetry = traced.telemetry
    assert baseline.telemetry is None
    records = read_trace_jsonl(tmp_path / "run.trace.jsonl")
    assert telemetry["trace_path"] == str(tmp_path / "run.trace.jsonl")
    assert telemetry["span_count"] == len(records)
    assert runner.store[("telemetry", "trace")] == records

    # Every executed stage has its pipeline span.
    span_names = {record["name"] for record in records}
    for stage in (s.name for s in traced.stages):
        assert f"pipeline.{stage}" in span_names, stage
    assert "train.epoch" in span_names
    assert "eval.rank_shard" in span_names

    # The snapshot covers every instrumented layer.
    counters = telemetry["metrics"]["counters"]
    assert counters["ingest.datasets"] == 1
    assert counters["ingest.triples"] > 0
    assert counters["train.epochs"] == 2
    assert counters["train.batches"] > 0
    assert counters["eval.entries"] > 0
    assert counters["eval.ranked_targets"] > 0
    assert any(name.startswith("cache.rules.") for name in counters)
    histograms = telemetry["metrics"]["histograms"]
    assert histograms["train.epoch_seconds"]["count"] == 2

    # --profile recorded wall/cpu/RSS per executed stage.
    profile = telemetry["profile"]
    assert set(profile) == {stage.name for stage in traced.stages}
    for stage_profile in profile.values():
        assert stage_profile["wall_seconds"] >= 0.0
        assert "rss_peak_bytes" in stage_profile
