"""Spec-layer tests: schema invariants, serialization round-trips, validation.

The round-trip property (``load(dump(spec)) == spec`` for arbitrary valid
specs, TOML and JSON) is the acceptance criterion of the declarative API: a
spec file must be a *lossless* record of the experimental procedure.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import schema
from repro.api.spec import (
    ExperimentSpec,
    SpecValidationError,
    diff_specs,
    spec_template,
)


# ------------------------------------------------------------------ schema invariants
def test_every_optional_knob_defaults_to_none():
    """TOML has no null: omitting a value must round-trip to the default,
    which is only exact when every optional knob defaults to None."""
    for section in schema.SECTIONS:
        for knob in section.knobs:
            if knob.optional:
                assert knob.default is None, f"{section.name}.{knob.name}"


def test_schema_constants_match_the_registry():
    from repro.models.registry import CORE_MODELS, resolve_model_class

    assert schema.CORE_MODELS == tuple(CORE_MODELS)
    for name in schema.CORE_MODELS:
        assert resolve_model_class(name).__name__ == name


def test_schema_flags_and_dests_are_unique_per_section_set():
    """The sections combined on one subcommand may not collide on flags."""
    for sections in (
        (schema.DATASET, schema.MODEL, schema.TRAINING, schema.EVALUATION),
        (schema.INGEST, schema.AUDIT),
    ):
        flags = [knob.cli_flag for section in sections for knob in section.knobs]
        dests = [knob.cli_dest for section in sections for knob in section.knobs]
        assert len(flags) == len(set(flags))
        assert len(dests) == len(set(dests))


def test_derived_defaults_are_the_schema_defaults():
    """ExperimentConfig, TrainingConfig and the evaluator/ingester constants
    all derive from the schema — the drift the spec API was built to kill."""
    from repro.eval.ranking import DEFAULT_EVAL_BATCH_SIZE
    from repro.experiments.config import ExperimentConfig
    from repro.kg.streaming import DEFAULT_CHUNK_SIZE, DEFAULT_MAX_QUEUE_CHUNKS
    from repro.models.trainer import TrainingConfig

    config = ExperimentConfig()
    training = TrainingConfig()
    t = schema.TRAINING_DEFAULTS
    assert (config.dim, config.epochs, config.num_negatives) == (
        schema.MODEL_DEFAULTS["dim"], t["epochs"], t["num_negatives"],
    )
    assert (config.batch_size, config.learning_rate, config.optimizer) == (
        t["batch_size"], t["learning_rate"], t["optimizer"],
    )
    assert (training.epochs, training.batch_size, training.num_negatives) == (
        t["epochs"], t["batch_size"], t["num_negatives"],
    )
    assert (training.optimizer, training.loss, training.sampler) == (
        t["optimizer"], t["loss"], t["sampler"],
    )
    assert DEFAULT_EVAL_BATCH_SIZE == schema.EVALUATION_DEFAULTS["batch_size"]
    assert DEFAULT_CHUNK_SIZE == schema.INGEST_DEFAULTS["chunk_size"]
    assert DEFAULT_MAX_QUEUE_CHUNKS == schema.INGEST_DEFAULTS["max_queue_chunks"]


def test_default_spec_equals_default_experiment_config():
    from repro.experiments.config import ExperimentConfig

    assert ExperimentSpec().to_experiment_config() == ExperimentConfig()


# ------------------------------------------------------------------ explicit round-trips
def test_default_spec_round_trips_via_toml_and_json():
    spec = ExperimentSpec()
    assert ExperimentSpec.loads(spec.dumps("toml"), "toml") == spec
    assert ExperimentSpec.loads(spec.dumps("json"), "json") == spec


def test_dump_load_file_round_trip(tmp_path):
    spec = ExperimentSpec(name="files", datasets=["WN18-like"], models=["TransE"])
    spec.training.epochs = 3
    for suffix in (".toml", ".json"):
        path = spec.dump(tmp_path / f"spec{suffix}")
        assert ExperimentSpec.load(path) == spec


def test_overrides_round_trip():
    spec = ExperimentSpec(
        overrides={
            "models": {"ConvE": {"model": {"dim": 8}, "training": {"learning_rate": 0.01}}},
            "datasets": {"YAGO3-10-like": {"audit": {"theta": 0.7}}},
        }
    )
    assert ExperimentSpec.loads(spec.dumps("toml")) == spec
    assert ExperimentSpec.loads(spec.dumps("json"), "json") == spec


def test_template_is_loadable_and_equals_defaults():
    assert ExperimentSpec.loads(spec_template()) == ExperimentSpec()


def test_unknown_format_rejected():
    with pytest.raises(ValueError, match="unknown spec format"):
        ExperimentSpec().dumps("yaml")
    with pytest.raises(ValueError, match="cannot infer spec format"):
        ExperimentSpec().dump("/tmp/spec.yaml")


# ------------------------------------------------------------------ property round-trip
def _knob_strategy(knob: schema.Knob):
    if knob.choices is not None:
        base = st.sampled_from(knob.choices)
    elif knob.type is bool:
        base = st.booleans()
    elif knob.type is int:
        low = int(knob.minimum) if knob.minimum is not None else 0
        base = st.integers(min_value=low, max_value=low + 10_000)
    elif knob.type is float:
        low = knob.minimum if knob.minimum is not None else 0.0
        high = knob.maximum if knob.maximum is not None else 1e6
        base = st.floats(min_value=low, max_value=high, allow_nan=False, allow_infinity=False)
    else:
        base = st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=30
        )
    if knob.optional:
        return st.one_of(st.none(), base)
    return base


def _section_strategy(section: schema.Section, skip=()):
    return st.fixed_dictionaries(
        {knob.name: _knob_strategy(knob) for knob in section.knobs if knob.name not in skip}
    )


@st.composite
def specs(draw):
    spec = ExperimentSpec()
    spec.name = draw(st.text(min_size=1, max_size=20).filter(lambda s: s.strip()))
    spec.datasets = draw(
        st.lists(st.sampled_from(schema.ALL_DATASETS), unique=True, max_size=6)
    )
    model_pool = tuple(schema.CORE_MODELS) + schema.BASELINE_SCORERS
    spec.models = draw(st.lists(st.sampled_from(model_pool), unique=True, max_size=6))
    spec.include_amie = draw(st.booleans())
    stage_pool = [stage for stage in schema.STAGES if stage != "deredundify"]
    chosen = draw(st.lists(st.sampled_from(stage_pool), unique=True, min_size=1))
    spec.stages = [stage for stage in schema.STAGES if stage in chosen]
    for section in schema.SECTIONS:
        # source/source_name carry cross-field requirements; keep them unset.
        skip = ("source", "source_name") if section.name == "dataset" else ()
        values = draw(_section_strategy(section, skip=skip))
        for key, value in values.items():
            setattr(getattr(spec, section.name), key, value)
    # Respect the cross-field rules instead of generating invalid specs.
    if spec.training.restore_best and spec.training.validate_every <= 0:
        spec.training.validate_every = 1
    if spec.deltas.as_of is not None and spec.deltas.log is None:
        spec.deltas.as_of = None
    if draw(st.booleans()) and spec.models:
        target = draw(st.sampled_from(spec.models))
        if target not in schema.BASELINE_SCORERS:
            spec.overrides = {"models": {target: {"model": {"dim": draw(st.integers(1, 64))}}}}
    return spec


@settings(max_examples=60, deadline=None)
@given(specs())
def test_arbitrary_valid_specs_round_trip_exactly(spec):
    assert spec.validate() == []
    assert ExperimentSpec.loads(spec.dumps("toml"), "toml") == spec
    assert ExperimentSpec.loads(spec.dumps("json"), "json") == spec
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=30, deadline=None)
@given(specs())
def test_fingerprint_is_stable_and_value_sensitive(spec):
    reloaded = ExperimentSpec.loads(spec.dumps("toml"))
    assert reloaded.fingerprint() == spec.fingerprint()
    mutated = ExperimentSpec.loads(spec.dumps("toml"))
    mutated.training.epochs += 1
    assert mutated.fingerprint() != spec.fingerprint()


# ------------------------------------------------------------------ validation errors
def _errors_of(text):
    with pytest.raises(SpecValidationError) as excinfo:
        ExperimentSpec.loads(text)
    return excinfo.value.errors


def test_validation_reports_all_errors_with_paths_and_suggestions():
    errors = _errors_of(
        """
        name = "bad"
        models = ["TranE"]
        datasets = ["WN18-like", "FB15j-like"]
        [trainig]
        epochs = 5
        [training]
        epochs = 0
        optimizer = "adamw"
        learning_rate = "fast"
        [evaluation]
        workers = -2
        """.replace("\n        ", "\n")
    )
    by_path = {error.path: error for error in errors}
    assert by_path["trainig"].suggestion == "training"
    assert by_path["models[0]"].suggestion == "TransE"
    assert by_path["datasets[1]"].suggestion == "FB15k-like"
    assert "must be >= 1" in by_path["training.epochs"].message
    assert by_path["training.optimizer"].suggestion == "adam"
    assert "expected a number" in by_path["training.learning_rate"].message
    assert "must be >= 1" in by_path["evaluation.workers"].message
    assert len(errors) == 7


def test_validation_rejects_unknown_knob_with_suggestion():
    errors = _errors_of("[training]\nepochss = 3\n")
    assert errors[0].path == "training.epochss"
    assert errors[0].suggestion == "epochs"


def test_validation_rejects_bool_where_int_expected():
    errors = _errors_of("[training]\nepochs = true\n")
    assert "expected an integer" in errors[0].message


def test_validate_catches_none_on_a_required_knob():
    """A programmatic None on a required field must fail validation, not
    crash deep inside the runner (to_dict only omits None for optional knobs)."""
    spec = ExperimentSpec()
    spec.training.epochs = None
    errors = spec.validate()
    assert any(
        error.path == "training.epochs" and "null" in error.message for error in errors
    )


def test_validation_of_cross_field_rules():
    errors = _errors_of('[dataset]\nsource = "somewhere"\n')
    assert any(error.path == "dataset.source_name" for error in errors)

    errors = _errors_of('[dataset]\nsource_name = "orphan"\n')
    assert any(error.path == "dataset.source" for error in errors)

    errors = _errors_of('stages = ["deredundify", "report"]\n')
    assert any("deredundify" in error.message for error in errors)

    errors = _errors_of("[training]\nrestore_best = true\n")
    assert any(error.path == "training.restore_best" for error in errors)


def test_validation_requires_deredundify_stage_for_derived_dataset():
    """Listing <source>-deredundant without the stage that builds it is an
    upfront validation error, not a mid-run KeyError."""
    errors = _errors_of(
        'datasets = ["mykg", "mykg-deredundant"]\n'
        '[dataset]\nsource = "dir"\nsource_name = "mykg"\n'
    )
    assert any(
        error.path == "stages" and "deredundify" in error.message for error in errors
    )
    # With the stage declared the same spec is valid.
    spec = ExperimentSpec.loads(
        'datasets = ["mykg", "mykg-deredundant"]\n'
        'stages = ["ingest", "deredundify", "train"]\n'
        '[dataset]\nsource = "dir"\nsource_name = "mykg"\n'
    )
    assert spec.validate() == []


def test_null_override_knob_is_pruned_and_round_trips():
    """A null override means "use the default"; it must not break TOML dumps."""
    spec = ExperimentSpec.loads(
        json.dumps(
            {"overrides": {"models": {"TransE": {"training": {"row_budget": None}}}}}
        ),
        "json",
    )
    assert spec.overrides == {}
    assert ExperimentSpec.loads(spec.dumps("toml")) == spec
    # Programmatically constructed None overrides dump cleanly too.
    spec = ExperimentSpec(
        overrides={"models": {"TransE": {"training": {"row_budget": None, "epochs": 5}}}}
    )
    reloaded = ExperimentSpec.loads(spec.dumps("toml"))
    assert reloaded.overrides == {"models": {"TransE": {"training": {"epochs": 5}}}}


def test_validation_of_override_scopes_and_sections():
    errors = _errors_of(
        '[overrides.modells.TransE.model]\ndim = 4\n'
    )
    assert errors[0].path == "overrides.modells"
    assert errors[0].suggestion == "models"

    errors = _errors_of('[overrides.models.TransE.dataset]\nscale = "tiny"\n')
    assert "not an overridable section" in errors[0].message

    errors = _errors_of('[overrides.models.TranE.model]\ndim = 4\n')
    assert errors[0].suggestion == "TransE"


def test_invalid_toml_and_json_report_parse_errors():
    with pytest.raises(SpecValidationError, match="<toml>"):
        ExperimentSpec.loads("epochs = = 3")
    with pytest.raises(SpecValidationError, match="<json>"):
        ExperimentSpec.loads("{not json", "json")


def test_stage_order_is_normalized_to_canonical():
    spec = ExperimentSpec.loads('stages = ["report", "train", "ingest"]\n')
    assert spec.stages == ["ingest", "train", "report"]


# ------------------------------------------------------------------ overrides / derivation
def test_config_for_applies_dataset_then_model_patches():
    spec = ExperimentSpec(
        overrides={
            "models": {"ConvE": {"model": {"dim": 8}, "training": {"epochs": 2}}},
            "datasets": {"WN18-like": {"training": {"epochs": 7}, "audit": {"theta": 0.5}}},
        }
    )
    base = spec.to_experiment_config()
    assert base.epochs == schema.TRAINING_DEFAULTS["epochs"]

    per_dataset = spec.config_for(dataset="WN18-like")
    assert per_dataset.epochs == 7
    assert per_dataset.audit_theta == 0.5

    # The model patch lands after the dataset patch.
    combined = spec.config_for(model="ConvE", dataset="WN18-like")
    assert combined.dim == 8
    assert combined.epochs == 2
    assert combined.audit_theta == 0.5


def test_diff_specs_reports_dotted_paths():
    left = ExperimentSpec()
    right = ExperimentSpec()
    right.training.epochs = 3
    right.training.row_budget = 64
    differences = dict((path, (a, b)) for path, a, b in diff_specs(left, right))
    assert differences["training.epochs"] == (schema.TRAINING_DEFAULTS["epochs"], 3)
    # Optional knob unset on the left shows as None.
    assert differences["training.row_budget"] == (None, 64)
    assert diff_specs(left, left) == []


def test_to_dict_is_json_clean():
    spec = ExperimentSpec(overrides={"models": {"TransE": {"model": {"dim": 4}}}})
    json.dumps(spec.to_dict())  # must not raise
