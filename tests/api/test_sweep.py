"""Sweep tests: grid validation and expansion, cache-shared execution, and
the ``repro-kgc sweep`` CLI surface."""

import pytest

from repro.api import ExperimentSpec, Runner, expand_sweep, load_sweep, run_sweep
from repro.api.spec import SpecValidationError, validate_sweep_table
from repro.cli import main


def _write_sweep(tmp_path, body):
    path = tmp_path / "sweep.toml"
    path.write_text(body)
    return path


_BASE = """
name = "sweep-test"
datasets = ["WN18RR-like"]
models = ["DistMult"]
include_amie = false
stages = ["ingest", "train", "evaluate", "report"]

[dataset]
scale = "tiny"

[model]
dim = 8

[training]
epochs = 1
"""


# ------------------------------------------------------------------ validation
def test_validate_sweep_table_coerces_and_orders_axes():
    errors = []
    axes = validate_sweep_table(
        {
            # Declared out of schema order on purpose; margin values as ints.
            "training": {"margin": [1, 2], "epochs": [1, 2]},
            "model": {"dim": [8, 16]},
        },
        errors,
    )
    assert errors == []
    # Deterministic order: schema section order, then knob declaration order.
    assert [(section, knob) for section, knob, _ in axes] == [
        ("model", "dim"), ("training", "epochs"), ("training", "margin"),
    ]
    # Values went through knob coercion: margin is a float knob.
    margin_values = dict(((s, k), v) for s, k, v in axes)[("training", "margin")]
    assert margin_values == [1.0, 2.0]
    assert all(isinstance(value, float) for value in margin_values)


def test_validate_sweep_table_rejects_bad_grids():
    for raw, fragment in [
        (["model"], "table"),                          # not a table at all
        ({"telemetry": {"enabled": [True]}}, "telemetry"),  # not sweepable
        ({"model": ["dim"]}, "table"),                 # section not a table
        ({"model": {"dimension": [8]}}, "dim"),        # unknown knob (did-you-mean)
        ({"model": {"dim": 8}}, "list"),               # scalar, not a list
        ({"model": {"dim": []}}, "empty"),             # empty axis
        ({"model": {"dim": [8, 8]}}, "duplicate"),     # repeated value
        ({"model": {"dim": [-4]}}, "dim"),             # schema range violation
    ]:
        errors = []
        validate_sweep_table(raw, errors)
        assert errors, raw
        assert any(fragment in str(error) for error in errors), (raw, errors)


def test_load_sweep_reads_spec_and_axes(tmp_path):
    path = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8, 16]\n")
    spec, axes = load_sweep(path)
    assert spec.name == "sweep-test"
    assert axes == [("model", "dim", [8, 16])]


def test_load_sweep_without_sweep_table_is_single_cell(tmp_path):
    path = _write_sweep(tmp_path, _BASE)
    spec, axes = load_sweep(path)
    assert axes == []
    cells = expand_sweep(spec, axes)
    assert [cell.label for cell in cells] == ["base"]
    assert cells[0].spec.fingerprint() == spec.fingerprint()


def test_load_sweep_reports_spec_and_grid_problems_together(tmp_path):
    path = _write_sweep(
        tmp_path,
        _BASE.replace('dim = 8', 'dim = -1') + "\n[sweep.training]\nepochs = []\n",
    )
    with pytest.raises(SpecValidationError) as excinfo:
        load_sweep(path)
    message = str(excinfo.value)
    assert "dim" in message and "epochs" in message


def test_spec_validate_accepts_sweep_files(tmp_path, capsys):
    """`repro-kgc spec validate` understands the [sweep] table."""
    path = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8, 16]\n")
    assert main(["spec", "validate", str(path)]) == 0
    bad = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8, 8]\n")
    assert main(["spec", "validate", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "duplicate" in out


# ------------------------------------------------------------------ expansion
def test_expand_sweep_is_a_cartesian_grid_with_base_name():
    base = ExperimentSpec(name="grid")
    cells = expand_sweep(
        base, [("model", "dim", [8, 16]), ("training", "epochs", [1, 2])]
    )
    assert [cell.label for cell in cells] == [
        "model.dim=8,training.epochs=1",
        "model.dim=8,training.epochs=2",
        "model.dim=16,training.epochs=1",
        "model.dim=16,training.epochs=2",
    ]
    assert all(cell.spec.name == "grid" for cell in cells)
    assert cells[2].spec.model.dim == 16 and cells[2].spec.training.epochs == 1
    assert cells[2].values == {"model.dim": 16, "training.epochs": 1}
    # Distinct knob values => distinct fingerprints (distinct cache entries).
    assert len({cell.spec.fingerprint() for cell in cells}) == 4
    # The base spec was never mutated.
    assert base.model.dim != 16 or base.training.epochs != 2


def test_cell_coinciding_with_plain_spec_shares_its_fingerprint(tmp_path):
    path = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8, 16]\n")
    spec, axes = load_sweep(path)
    plain, _ = load_sweep(_write_sweep(tmp_path, _BASE))  # dim = 8 base spec
    cells = expand_sweep(spec, axes)
    assert cells[0].spec.fingerprint() == plain.fingerprint()


# ------------------------------------------------------------------ execution
def test_run_sweep_consolidates_rows_and_matches_plain_runs(tmp_path):
    path = _write_sweep(tmp_path, _BASE + "\n[sweep.training]\nepochs = [1, 2]\n")
    spec, axes = load_sweep(path)
    seen = []
    result = run_sweep(
        spec, axes, cache_dir=tmp_path / "cache",
        progress=lambda index, total, cell: seen.append((index, total, cell.label)),
    )
    assert seen == [(0, 2, "training.epochs=1"), (1, 2, "training.epochs=2")]
    assert [cell.label for cell in result.cells] == [label for _, _, label in seen]
    assert len(result.reports) == 2
    assert {row["cell"] for row in result.rows} == {
        "training.epochs=1", "training.epochs=2",
    }
    assert "Sweep sweep-test (2 cell(s))" in result.text
    assert result.report_for("training.epochs=2").rows["WN18RR-like"]
    with pytest.raises(KeyError):
        result.report_for("no-such-cell")

    # Bit-identity: each cell equals the equivalent plain cached run.
    for cell, report in zip(result.cells, result.reports):
        plain = Runner(cell.spec, cache_dir=tmp_path / "cache").run()
        assert plain.rows == report.rows, cell.label


def test_repeated_sweep_reuses_every_cell(tmp_path):
    path = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8, 16]\n")
    spec, axes = load_sweep(path)
    cold = run_sweep(spec, axes, cache_dir=tmp_path / "cache")
    warm = run_sweep(spec, axes, cache_dir=tmp_path / "cache")
    assert warm.rows == cold.rows
    for report in warm.reports:
        assert report.telemetry["cache"]["miss"] == 0
        assert all(stage.produced == [] for stage in report.stages)


def test_editing_one_axis_only_recomputes_new_cells(tmp_path):
    path = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8]\n")
    spec, axes = load_sweep(path)
    run_sweep(spec, axes, cache_dir=tmp_path / "cache")

    widened, axes = load_sweep(
        _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8, 16]\n")
    )
    second = run_sweep(widened, axes, cache_dir=tmp_path / "cache")
    by_cell = {
        cell.label: report for cell, report in zip(second.cells, second.reports)
    }
    assert by_cell["model.dim=8"].telemetry["cache"]["miss"] == 0   # reused
    assert by_cell["model.dim=16"].telemetry["cache"]["write"] > 0  # new work


def test_run_sweep_without_cache_uses_private_memory_stores(tmp_path):
    path = _write_sweep(tmp_path, _BASE)
    spec, axes = load_sweep(path)
    result = run_sweep(spec, axes, cache_dir=None)
    assert len(result.reports) == 1
    assert result.reports[0].telemetry is None  # no disk store, no cache stats


# ------------------------------------------------------------------ CLI
def test_cli_sweep_end_to_end(tmp_path, capsys):
    path = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = [8, 16]\n")
    cache = tmp_path / "cache"
    assert main(["sweep", str(path), "--cache-dir", str(cache), "--quiet"]) == 0
    cold = capsys.readouterr().out
    assert "2 cell(s)" in cold and "model.dim(2)" in cold
    assert "model.dim=8" in cold and "model.dim=16" in cold
    assert f"cache {cache}:" in cold

    assert main(["sweep", str(path), "--cache-dir", str(cache), "--quiet"]) == 0
    warm = capsys.readouterr().out
    assert "0 miss(es)" in warm and "0 write(s)" in warm
    # The consolidated tables are bit-identical across cold and warm runs.
    assert cold.split("Sweep")[1] == warm.split("Sweep")[1]


def test_cli_sweep_rejects_bad_input(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["sweep", str(tmp_path / "missing.toml"), "--no-cache"])
    bad = _write_sweep(tmp_path, _BASE + "\n[sweep.model]\ndim = 8\n")
    with pytest.raises(SystemExit):
        main(["sweep", str(bad), "--no-cache"])
    good = _write_sweep(tmp_path, _BASE)
    with pytest.raises(SystemExit):
        main(["sweep", str(good), "--no-cache", "--stages", "train,fly"])


def test_cli_run_cache_dir_round_trip(tmp_path, capsys):
    spec_path = _write_sweep(tmp_path, _BASE)
    cache = tmp_path / "cache"
    assert main(["run", str(spec_path), "--cache-dir", str(cache), "--quiet"]) == 0
    cold = capsys.readouterr().out
    assert f"cache {cache}:" in cold and "0 hit(s)" in cold
    assert main(["run", str(spec_path), "--cache-dir", str(cache), "--quiet"]) == 0
    warm = capsys.readouterr().out
    assert "0 miss(es)" in warm
    # Identical evaluation tables, zero artifacts rebuilt.
    assert cold.split("Stages")[0].splitlines()[0] == warm.split("Stages")[0].splitlines()[0]
    assert "| 0" in warm  # every stage reports 0 new artifacts
