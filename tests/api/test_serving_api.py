"""The versioned query wire schema: round trips, rejection paths, self-audit."""

import pytest

from repro.api import (
    PROTOCOL_VERSION,
    BatchResult,
    Query,
    QueryBatch,
    TopKResult,
    WireError,
    queries_for_triples,
)
from repro.api.serving import WIRE_TYPES, wire_schema_mismatches


# ------------------------------------------------------------------ round trips
def test_query_wire_round_trip_preserves_every_field():
    query = Query(side="head", anchor=5, relation=2, k=7, filtered=True, with_ranks=False)
    assert Query.from_wire(query.to_wire()) == query


def test_result_wire_round_trip_preserves_every_field():
    result = TopKResult(
        side="tail", anchor=1, relation=0,
        entities=(4, 2, 9), scores=(0.5, 0.25, -1.0), ranks=(1.0, 2.5, 2.5),
        filtered=True, cache_hit=True, batch_size=3,
    )
    assert TopKResult.from_wire(result.to_wire()) == result


def test_batch_envelopes_round_trip_and_carry_the_version():
    batch = QueryBatch.of(Query.tail(0, 1), Query.head(2, 3, k=4))
    wire = batch.to_wire()
    assert wire["version"] == PROTOCOL_VERSION
    assert QueryBatch.from_wire(wire) == batch
    response = BatchResult(
        results=(TopKResult(side="tail", anchor=0, relation=1, entities=(1,), scores=(0.0,)),)
    )
    assert BatchResult.from_wire(response.to_wire()) == response


# ------------------------------------------------------------------ rejection
def test_unknown_fields_are_rejected():
    wire = Query.tail(0, 1).to_wire()
    wire["surprise"] = 1
    with pytest.raises(WireError, match="surprise"):
        Query.from_wire(wire)


def test_missing_required_fields_are_rejected():
    wire = Query.tail(0, 1).to_wire()
    del wire["anchor"]
    with pytest.raises(WireError, match="anchor"):
        Query.from_wire(wire)


def test_newer_protocol_versions_are_rejected():
    wire = QueryBatch.of(Query.tail(0, 1)).to_wire()
    wire["version"] = PROTOCOL_VERSION + 1
    with pytest.raises(WireError, match="version"):
        QueryBatch.from_wire(wire)


def test_empty_batches_are_rejected():
    with pytest.raises(WireError, match="quer"):
        QueryBatch.from_wire({"version": PROTOCOL_VERSION, "queries": []})


def test_invalid_enum_and_range_values_are_rejected():
    wire = Query.tail(0, 1).to_wire()
    wire["side"] = "middle"
    with pytest.raises(WireError, match="side"):
        Query.from_wire(wire)
    wire = Query.tail(0, 1).to_wire()
    wire["k"] = 0
    with pytest.raises(WireError, match="k"):
        Query.from_wire(wire)


# ------------------------------------------------------------------ self-audit
def test_wire_schema_matches_the_dataclasses():
    """The declared wire schema and the dataclass fields may never drift."""
    assert wire_schema_mismatches() == []
    assert {wire_type.__name__ for wire_type in WIRE_TYPES} == {"Query", "TopKResult"}


# ------------------------------------------------------------------ helpers
def test_queries_for_triples_deduplicates_shared_anchors():
    triples = [(0, 1, 2), (0, 1, 3), (4, 1, 2)]   # (h=0,r=1) and (r=1,t=2) repeat
    queries = queries_for_triples(triples, k=5)
    assert len(queries) == len(set(queries))
    tails = [q for q in queries if q.side == "tail"]
    heads = [q for q in queries if q.side == "head"]
    assert {(q.anchor, q.relation) for q in tails} == {(0, 1), (4, 1)}
    assert {(q.relation, q.anchor) for q in heads} == {(1, 2), (1, 3)}
    assert all(q.k == 5 for q in queries)


def test_queries_for_triples_single_side():
    queries = queries_for_triples([(0, 1, 2)], k=3, sides=("tail",))
    assert len(queries) == 1 and queries[0].side == "tail"
