"""EvalOptions: schema sync, the legacy-keyword shim, and validation.

The satellite's regression test lives here: the ``EvalOptions`` dataclass and
the schema's ``evaluation`` section must agree field-for-field and
default-for-default in *both* directions (modulo the declared
``NON_SCHEMA_FIELDS`` engine extras), so neither surface can drift.
"""

import dataclasses

import pytest

from repro.api import EvalOptions, schema
from repro.api.options import LEGACY_KEYWORDS, NON_SCHEMA_FIELDS
from repro.eval import LinkPredictionEvaluator, evaluate_model
from repro.experiments import ExperimentConfig
from repro.models import ModelConfig, make_model


# ------------------------------------------------------------------ schema sync
def test_every_evaluation_knob_has_a_matching_field_and_default():
    """Schema -> dataclass: a knob added to the schema must gain a field."""
    fields = {field.name: field for field in dataclasses.fields(EvalOptions)}
    for knob in schema.section("evaluation").knobs:
        assert knob.name in fields, f"schema knob {knob.name} missing from EvalOptions"
        assert fields[knob.name].default == knob.default, knob.name


def test_every_field_is_either_a_schema_knob_or_a_declared_extra():
    """Dataclass -> schema: no undeclared fields sneak past the schema."""
    knob_names = {knob.name for knob in schema.section("evaluation").knobs}
    for field in dataclasses.fields(EvalOptions):
        assert field.name in knob_names or field.name in NON_SCHEMA_FIELDS, (
            f"EvalOptions.{field.name} is neither an evaluation-section knob "
            f"nor listed in NON_SCHEMA_FIELDS"
        )


def test_legacy_keyword_map_targets_real_fields():
    fields = {field.name for field in dataclasses.fields(EvalOptions)}
    assert set(LEGACY_KEYWORDS.values()) <= fields


# ------------------------------------------------------------------ legacy shim
def test_legacy_keywords_warn_and_map_to_fields():
    with pytest.warns(DeprecationWarning, match="options=EvalOptions"):
        options = EvalOptions.from_legacy_kwargs(
            {"eval_batch_size": 7, "n_workers": 2, "eval_dtype": "fp32"}
        )
    assert options.batch_size == 7
    assert options.workers == 2
    assert options.eval_dtype == "fp32"
    assert options.backend == EvalOptions().backend      # untouched fields keep defaults


def test_unknown_legacy_keyword_is_a_type_error():
    with pytest.raises(TypeError, match="banana"):
        EvalOptions.from_legacy_kwargs({"banana": 1})


def test_evaluator_accepts_legacy_keywords_with_a_deprecation_warning(toy_dataset):
    with pytest.warns(DeprecationWarning, match="eval_batch_size"):
        evaluator = LinkPredictionEvaluator(toy_dataset, eval_batch_size=3, n_workers=1)
    assert evaluator.options.batch_size == 3
    assert evaluator.eval_batch_size == 3                # legacy attribute preserved


def test_evaluator_rejects_unknown_keywords(toy_dataset):
    with pytest.raises(TypeError, match="typo_knob"):
        LinkPredictionEvaluator(toy_dataset, typo_knob=1)


def test_legacy_and_options_paths_produce_identical_results(toy_dataset):
    model = make_model("DistMult", 8, 4, ModelConfig(dim=8, seed=5))
    model.train_mode(False)
    modern = evaluate_model(model, toy_dataset, options=EvalOptions(batch_size=3))
    with pytest.warns(DeprecationWarning):
        legacy = evaluate_model(model, toy_dataset, eval_batch_size=3)
    for ours, theirs in zip(modern.records, legacy.records):
        assert ours.raw_rank == theirs.raw_rank
        assert ours.filtered_rank == theirs.filtered_rank


# ------------------------------------------------------------------ construction
def test_from_experiment_config_reads_the_eval_knobs():
    config = ExperimentConfig(eval_batch_size=9, eval_workers=2)
    options = EvalOptions.from_experiment_config(config)
    assert options.batch_size == 9
    assert options.workers == 2
    assert options.shard_size == config.eval_shard_size


# ------------------------------------------------------------------ validation
def test_normalized_lists_every_violation_at_once():
    bad = EvalOptions(batch_size=0, workers=0, eval_dtype="fp128")
    with pytest.raises(ValueError) as excinfo:
        bad.normalized()
    message = str(excinfo.value)
    assert "evaluation.batch_size" in message
    assert "evaluation.workers" in message
    assert "evaluation.eval_dtype" in message


def test_normalized_passes_through_valid_options():
    options = EvalOptions(batch_size=4, workers=2, shard_size=5)
    assert options.normalized() == options
