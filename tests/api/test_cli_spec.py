"""CLI <-> schema synchronization and the spec-driven subcommands.

Contains the default-drift regression test: every generated flag's parser
default must equal the knob schema's default, for every subcommand — the
exact drift (``train`` hardcoding dim=24/epochs=40/negatives=4 against the
config's 16/30/2) this API redesign removed.
"""

from pathlib import Path

import pytest

from repro.api import ExperimentSpec, Runner, schema
from repro.cli import GENERATED_KNOB_FLAGS, build_parser, main
from repro.experiments import ExperimentConfig, Workbench

EXAMPLE_SPECS = sorted((Path(__file__).parents[2] / "examples" / "specs").glob("*.toml"))

#: Minimal argv that reaches each subcommand's defaults.
MINIMAL_ARGV = {
    "run": ["run", "unused.toml"],
    "generate": ["generate"],
    "audit": ["audit"],
    "ingest": ["ingest", "--input", "unused"],
    "train": ["train"],
    "experiment": ["experiment", "table1"],
    "serve": ["serve", "--artifact", "unused"],
    "query": ["query", "--anchor", "0", "--relation", "0"],
    "delta-apply": ["delta", "apply", "--log", "unused"],
    "delta-audit": ["delta", "audit", "--log", "unused"],
}


@pytest.fixture(autouse=True)
def _no_repro_env(monkeypatch):
    """Generated-flag defaults honour REPRO_* overrides; scrub them here."""
    import os

    for key in list(os.environ):
        if key.startswith("REPRO_") and key != "REPRO_TEST_MAX_WORKERS":
            monkeypatch.delenv(key)
    yield


# ------------------------------------------------------------------ default drift
def test_parser_defaults_equal_schema_defaults_for_all_subcommands():
    """Regression: CLI defaults are *generated* from the schema, never retyped."""
    parser = build_parser()
    assert set(MINIMAL_ARGV) == set(GENERATED_KNOB_FLAGS)
    for command, argv in MINIMAL_ARGV.items():
        args = parser.parse_args(argv)
        knobs = GENERATED_KNOB_FLAGS[command]
        assert knobs, command
        for dest, (section_name, knob_name) in knobs.items():
            knob = schema.section(section_name).knob(knob_name)
            assert getattr(args, dest) == knob.parser_default(), (
                f"{command} --{dest}: parser default "
                f"{getattr(args, dest)!r} != schema default {knob.parser_default()!r}"
            )
            # The spec-value mapping lands on the schema default too.
            assert knob.from_parser_value(getattr(args, dest)) == knob.default


def test_train_defaults_no_longer_drift_from_the_config():
    """The historical drift: train hardcoded dim=24/epochs=40/negatives=4."""
    args = build_parser().parse_args(["train"])
    config = ExperimentConfig()
    assert args.dim == config.dim == 16
    assert args.epochs == config.epochs == 30
    assert args.negatives == config.num_negatives == 2
    assert args.batch_size == config.batch_size
    assert args.learning_rate == config.learning_rate
    assert args.optimizer == config.optimizer


def test_train_exposes_every_training_and_evaluation_knob():
    generated = build_parser() and GENERATED_KNOB_FLAGS["train"]
    sections = {section for section, _ in generated.values()}
    assert sections == {"dataset", "model", "training", "evaluation"}
    training_knobs = {knob for section, knob in generated.values() if section == "training"}
    assert training_knobs == {knob.name for knob in schema.TRAINING.knobs}


def test_environment_overrides_generated_flag_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_TRAINING_EPOCHS", "7")
    monkeypatch.setenv("REPRO_TRAINING_SPARSE_UPDATES", "false")
    monkeypatch.setenv("REPRO_EVALUATION_WORKERS", "3")
    args = build_parser().parse_args(["train"])
    assert args.epochs == 7
    assert args.dense_updates is True  # inverted flag encodes the False knob
    assert args.eval_workers == 3
    # Explicit flags still beat the environment.
    args = build_parser().parse_args(["train", "--epochs", "9"])
    assert args.epochs == 9


def test_invalid_environment_override_is_a_clean_error(monkeypatch):
    monkeypatch.setenv("REPRO_TRAINING_EPOCHS", "many")
    with pytest.raises(SystemExit, match="REPRO_TRAINING_EPOCHS"):
        build_parser()


def test_cli_flag_values_go_through_schema_validation():
    """Out-of-range flag values are rejected like a spec file would reject
    them, instead of silently producing a zero-epoch run."""
    with pytest.raises(SystemExit, match="training.epochs"):
        main(["train", "--epochs", "0"])
    with pytest.raises(SystemExit, match="num_negatives"):
        main(["train", "--negatives", "-3"])
    with pytest.raises(SystemExit, match="restore_best"):
        main(["train", "--restore-best"])  # needs --validate-every


def test_nonfinite_floats_are_rejected_by_validation():
    from repro.api.spec import ExperimentSpec, SpecValidationError

    with pytest.raises(SpecValidationError, match="finite"):
        ExperimentSpec.loads("[training]\nlearning_rate = nan\n")
    with pytest.raises(SpecValidationError, match="finite"):
        ExperimentSpec.loads("[training]\nmargin = inf\n")


def test_tristate_gzip_env_override_can_force_false(monkeypatch):
    """REPRO_INGEST_GZIPPED=false must mean 'force plain text', not 'auto'."""
    args = build_parser().parse_args(["ingest", "--input", "x"])
    assert args.gzip is None  # flag absent = auto-detect
    monkeypatch.setenv("REPRO_INGEST_GZIPPED", "false")
    args = build_parser().parse_args(["ingest", "--input", "x"])
    assert args.gzip is False
    monkeypatch.setenv("REPRO_INGEST_GZIPPED", "true")
    args = build_parser().parse_args(["ingest", "--input", "x"])
    assert args.gzip is True


def test_environment_overrides_go_through_schema_validation(monkeypatch):
    """An env override may not smuggle in a value the schema would reject."""
    monkeypatch.setenv("REPRO_TRAINING_OPTIMIZER", "adamw")
    with pytest.raises(SystemExit, match="REPRO_TRAINING_OPTIMIZER"):
        build_parser()
    monkeypatch.delenv("REPRO_TRAINING_OPTIMIZER")
    monkeypatch.setenv("REPRO_MODEL_DIM", "0")
    with pytest.raises(SystemExit, match="REPRO_MODEL_DIM"):
        build_parser()


# ------------------------------------------------------------------ spec subcommands
def test_spec_init_validate_round_trip(tmp_path, capsys):
    path = tmp_path / "template.toml"
    assert main(["spec", "init", "--output", str(path)]) == 0
    assert main(["spec", "validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    # Refuses to clobber without --force.
    with pytest.raises(SystemExit, match="--force"):
        main(["spec", "init", "--output", str(path)])
    assert main(["spec", "init", "--output", str(path), "--force"]) == 0


def test_spec_validate_reports_all_errors_and_fails(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('models = ["TranE"]\n[trainig]\nepochs = 2\n')
    good = tmp_path / "good.toml"
    good.write_text('name = "ok"\n')
    assert main(["spec", "validate", str(bad), str(good)]) == 1
    out = capsys.readouterr().out
    assert "did you mean 'TransE'?" in out
    assert "did you mean 'training'?" in out
    assert f"{good}: OK" in out


def test_spec_validate_missing_file(tmp_path, capsys):
    assert main(["spec", "validate", str(tmp_path / "nope.toml")]) == 1
    assert "not found" in capsys.readouterr().out


def test_spec_diff_against_defaults_and_files(tmp_path, capsys):
    left = tmp_path / "left.toml"
    left.write_text('[training]\nepochs = 3\n')
    assert main(["spec", "diff", str(left)]) == 1
    out = capsys.readouterr().out
    assert "training.epochs: 3 ->" in out
    same = tmp_path / "same.toml"
    same.write_text('[training]\nepochs = 3\n')
    assert main(["spec", "diff", str(left), str(same)]) == 0
    assert "identical" in capsys.readouterr().out


# ------------------------------------------------------------------ shipped specs
def test_examples_ship_specs():
    assert any(path.name == "headline_tiny.toml" for path in EXAMPLE_SPECS)


@pytest.mark.parametrize("path", EXAMPLE_SPECS, ids=lambda p: p.name)
def test_shipped_example_specs_validate_and_round_trip(path):
    """Acceptance: dump(load(spec)) == spec for every shipped example spec."""
    spec = ExperimentSpec.load(path)
    assert spec.validate() == []
    assert ExperimentSpec.loads(spec.dumps("toml"), "toml") == spec
    assert ExperimentSpec.loads(spec.dumps("json"), "json") == spec


# ------------------------------------------------------------------ run subcommand
def test_run_headline_spec_is_bit_identical_to_the_legacy_path(capsys):
    """Acceptance: `repro-kgc run examples/specs/headline_tiny.toml` metrics
    equal the equivalent legacy Workbench/flag invocation bit for bit."""
    spec_path = next(path for path in EXAMPLE_SPECS if path.name == "headline_tiny.toml")
    spec = ExperimentSpec.load(spec_path)
    report = Runner(spec).run()

    legacy = Workbench(
        ExperimentConfig(
            scale=spec.dataset.scale,
            seed=spec.dataset.seed,
            dim=spec.model.dim,
            epochs=spec.training.epochs,
            batch_size=spec.training.batch_size,
            num_negatives=spec.training.num_negatives,
            learning_rate=spec.training.learning_rate,
            optimizer=spec.training.optimizer,
            eval_batch_size=spec.evaluation.batch_size,
            models=tuple(spec.models),
            include_amie=spec.include_amie,
        )
    )
    assert set(report.rows) == set(spec.datasets)
    for dataset_name in spec.datasets:
        for row in report.rows[dataset_name]:
            legacy_row = legacy.evaluation(row["model"], dataset_name).as_row()
            assert dict(row) == dict(legacy_row), (row["model"], dataset_name)

    # And the CLI surface prints those very numbers.
    assert main(["run", str(spec_path), "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "headline-tiny" in out
    assert "Link prediction on WN18RR-like" in out


def test_run_stages_tolerates_spaces_and_trailing_commas(tmp_path, capsys):
    spec = ExperimentSpec(
        name="stage-spacing", datasets=["WN18RR-like"], models=[], include_amie=False
    )
    path = spec.dump(tmp_path / "spacing.toml")
    assert main(["run", str(path), "--stages", "ingest, audit,", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "audit" in out


def test_run_with_stage_subset(tmp_path, capsys):
    spec = ExperimentSpec(
        name="stage-subset", datasets=["WN18RR-like"], models=["DistMult"], include_amie=False
    )
    spec.model.dim = 8
    spec.training.epochs = 1
    path = spec.dump(tmp_path / "subset.toml")
    assert main(["run", str(path), "--stages", "ingest,audit", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "ingest" in out and "audit" in out
    assert "Link prediction" not in out


def test_run_rejects_missing_and_invalid_specs(tmp_path, capsys):
    with pytest.raises(SystemExit, match="not found"):
        main(["run", str(tmp_path / "ghost.toml")])
    bad = tmp_path / "bad.toml"
    bad.write_text("[training]\nepochs = -4\n")
    with pytest.raises(SystemExit, match="training.epochs"):
        main(["run", str(bad)])
    with pytest.raises(SystemExit, match="unknown stage"):
        spec = ExperimentSpec(datasets=[], models=[], include_amie=False)
        main(["run", str(spec.dump(tmp_path / "ok.toml")), "--stages", "warp"])
