"""The ``[deltas]`` spec section end to end: validation, fingerprinting,
snapshot pinning through the artifact cache, downstream invalidation,
size-bounded LRU eviction, and the ``repro-kgc delta`` CLI."""

import json

import pytest

from repro.api import DiskArtifactStore, ExperimentSpec, Runner
from repro.api.spec import SpecValidationError
from repro.cli import main
from repro.core.baselines import SimpleRuleModel
from repro.kg import DeltaBatch, DeltaLog
from repro.kg.io import write_triples_tsv
from repro.serve import QueryEngine


def _tiny_spec(**deltas):
    spec = ExperimentSpec(
        name="deltas-tiny",
        datasets=["WN18RR-like"],
        models=["DistMult"],
        include_amie=False,
    )
    spec.model.dim = 8
    spec.training.epochs = 2
    for key, value in deltas.items():
        setattr(spec.deltas, key, value)
    return spec


def _log_with(tmp_path, *batches):
    log = DeltaLog(tmp_path / "updates.jsonl")
    for batch in batches:
        log.append(batch)
    return log


# ------------------------------------------------------------------ spec layer
def test_as_of_without_log_is_rejected():
    spec = _tiny_spec(as_of=0)
    with pytest.raises(SpecValidationError, match="deltas.log"):
        Runner(spec)


def test_deltas_are_part_of_the_spec_fingerprint(tmp_path):
    base = _tiny_spec()
    logged = _tiny_spec(log=str(tmp_path / "updates.jsonl"))
    pinned = _tiny_spec(log=str(tmp_path / "updates.jsonl"), as_of=3)
    prints = {base.fingerprint(), logged.fingerprint(), pinned.fingerprint()}
    assert len(prints) == 3  # pinning a different state names different artifacts


def test_deltas_round_trip_through_to_dict():
    spec = _tiny_spec(log="updates.jsonl", as_of=2)
    data = spec.to_dict()
    assert data["deltas"] == {"log": "updates.jsonl", "as_of": 2}


# ------------------------------------------------------------------ pipeline
def test_runner_applies_log_and_pins_historical_states(tmp_path):
    log = _log_with(
        tmp_path,
        DeltaBatch(adds={"train": [("dx", "dr", "dy")]}),
        DeltaBatch(adds={"train": [("dy", "dr", "dz")]}),
    )
    full = Runner(_tiny_spec(log=str(log.path)))
    full.run(stages=["audit"])
    dataset = full.store[("dataset", "WN18RR-like")]
    assert dataset.metadata.notes["delta_seq"] == "1"
    assert "dx" in dataset.vocab.entities and "dz" in dataset.vocab.entities

    pinned = Runner(_tiny_spec(log=str(log.path), as_of=0))
    pinned.run(stages=["audit"])
    historical = pinned.store[("dataset", "WN18RR-like")]
    assert historical.metadata.notes["delta_seq"] == "0"
    assert "dx" in historical.vocab.entities
    assert "dz" not in historical.vocab.entities


def test_pinned_run_reproduces_from_disk_cache(tmp_path):
    log = _log_with(tmp_path, DeltaBatch(adds={"train": [("dx", "dr", "dy")]}))
    spec = _tiny_spec(log=str(log.path))
    cache_dir = tmp_path / "cache"
    first = Runner(spec, cache_dir=cache_dir)
    first.run(stages=["audit"])
    assert first.store.stats["write"] > 1

    second = Runner(spec, cache_dir=cache_dir)
    second.run(stages=["audit"])
    stats = second.store.stats
    assert stats["miss"] == 0 and stats["hit"] > 0
    # The only write a fully cached run performs is the delta-log summary.
    assert stats["write"] <= 1
    assert second.store[("dataset", "WN18RR-like")].metadata.notes["delta_seq"] == "0"


def test_log_growth_invalidates_downstream_audit_artifacts(tmp_path):
    forward = [("p1", "fwd", "q1"), ("p2", "fwd", "q2"), ("p3", "fwd", "q3")]
    log = _log_with(tmp_path, DeltaBatch(adds={"train": forward}))
    spec = _tiny_spec(log=str(log.path))
    cache_dir = tmp_path / "cache"
    first = Runner(spec, cache_dir=cache_dir)
    first.run(stages=["audit"])
    before = first.store[("redundancy", "WN18RR-like")]
    vocab = first.store[("dataset", "WN18RR-like")].vocab
    assert "bwd" not in vocab.relations

    # The log grows: a perfect reverse shadow of every "fwd" pair.
    log.append(DeltaBatch(adds={"train": [(t, "bwd", h) for h, _, t in forward]}))
    second = Runner(spec, cache_dir=cache_dir)
    second.run(stages=["audit"])
    dataset = second.store[("dataset", "WN18RR-like")]
    assert dataset.metadata.notes["delta_seq"] == "1"
    after = second.store[("redundancy", "WN18RR-like")]
    fwd = dataset.vocab.relation_id("fwd")
    bwd = dataset.vocab.relation_id("bwd")
    reversed_pairs = {
        tuple(sorted((o.relation_a, o.relation_b))) for o in after.reverse_pairs
    }
    assert tuple(sorted((fwd, bwd))) in reversed_pairs
    # The stale report (computed before the reverse shadows existed) was
    # dropped by the snapshot registration, not served from cache.
    old_pairs = {
        tuple(sorted((o.relation_a, o.relation_b))) for o in before.reverse_pairs
    }
    assert tuple(sorted((fwd, bwd))) not in old_pairs


# ------------------------------------------------------------------ LRU eviction
def test_disk_store_evicts_least_recently_used_partition(tmp_path):
    import os

    payload = "x" * 5000
    a = DiskArtifactStore("aaaa0000", cache_dir=tmp_path)
    a.put(("categories", "toy"), payload)
    b = DiskArtifactStore("bbbb0000", cache_dir=tmp_path)
    b.put(("categories", "toy"), payload)
    # The stamps decide the LRU order; same-instant touches can tie on
    # coarse-mtime filesystems, so pin them: B is clearly the least recent.
    now = os.stat(tmp_path / "aaaa0000" / ".last_used").st_mtime
    os.utime(tmp_path / "bbbb0000" / ".last_used", (now - 100, now - 100))

    c = DiskArtifactStore("cccc0000", cache_dir=tmp_path, max_bytes=13_000)
    c.put(("categories", "toy"), payload)
    assert not (tmp_path / "bbbb0000").exists()
    assert (tmp_path / "aaaa0000").exists()
    assert (tmp_path / "cccc0000").exists()
    assert c.stats["evict"] >= 1


def test_disk_store_never_evicts_its_own_partition(tmp_path):
    store = DiskArtifactStore("feedface", cache_dir=tmp_path, max_bytes=1)
    store.put(("categories", "toy"), "y" * 5000)
    # Budget of one byte: everything else would go, but the in-use partition
    # must survive its own writes.
    assert (tmp_path / "feedface").exists()
    assert store[("categories", "toy")] == "y" * 5000


def test_unbounded_store_never_evicts(tmp_path):
    for name in ("aaaa1111", "bbbb1111"):
        store = DiskArtifactStore(name, cache_dir=tmp_path)
        store.put(("categories", "toy"), "z" * 5000)
        assert store.stats["evict"] == 0
    assert (tmp_path / "aaaa1111").exists() and (tmp_path / "bbbb1111").exists()


# ------------------------------------------------------------------ serving
def test_engine_cache_keys_to_the_delta_snapshot():
    from repro.kg import LiveDatasetMaintainer
    from repro.kg.streaming import StreamingDatasetBuilder

    builder = StreamingDatasetBuilder("serve-deltas")
    builder.add_chunk("train", [("a", "r", "b"), ("b", "r", "c"), ("c", "r", "a")])
    builder.add_chunk("valid", [("a", "r", "c")])
    builder.add_chunk("test", [("b", "r", "a")])
    maintainer = LiveDatasetMaintainer.from_dataset(builder.build())
    maintainer.apply(DeltaBatch(adds={"train": [("c", "r", "b")]}))
    dataset = maintainer.canonical_dataset()
    scorer = SimpleRuleModel(dataset.train, dataset.num_entities, threshold=0.5)
    engine = QueryEngine.for_dataset(scorer, dataset, max_batch=4, max_delay=0.001)
    assert engine.cache.version == dataset.metadata.notes["delta_state"]
    engine.cache.put("row", [1.0])
    assert engine.invalidate("advanced") == 1
    assert engine.cache.version == "advanced"
    assert engine.cache.get("row") is None


# ------------------------------------------------------------------ CLI
SOURCE_ROWS = {
    "train": [
        ("a", "likes", "b"),
        ("b", "likes", "c"),
        ("a", "knows", "c"),
        ("c", "likes", "a"),
        ("d", "knows", "a"),
    ],
    "valid": [("a", "likes", "c"), ("d", "likes", "b")],
    "test": [("b", "knows", "a"), ("c", "knows", "d")],
}


def _source_dir(tmp_path):
    directory = tmp_path / "source"
    for split, rows in SOURCE_ROWS.items():
        write_triples_tsv(directory / f"{split}.txt", rows)
    return directory


def test_cli_delta_apply_exports_the_resulting_state(tmp_path, capsys):
    source = _source_dir(tmp_path)
    log = _log_with(
        tmp_path,
        DeltaBatch(adds={"train": [("e", "likes", "a")]}),
        DeltaBatch(removes={"train": [("a", "likes", "b")]}),
    )
    output = tmp_path / "state"
    rc = main(
        [
            "delta", "apply",
            "--dataset", str(source),
            "--log", str(log.path),
            "--output", str(output),
        ]
    )
    assert rc == 0
    exported = (output / "train.txt").read_text().splitlines()
    assert "e\tlikes\ta" in exported
    assert "a\tlikes\tb" not in exported
    out = capsys.readouterr().out
    assert "last applied seq" in out and "1" in out

    # --as-of pins the historical state: the removal never happens.
    pinned = tmp_path / "state0"
    rc = main(
        [
            "delta", "apply",
            "--dataset", str(source),
            "--log", str(log.path),
            "--as-of", "0",
            "--output", str(pinned),
        ]
    )
    assert rc == 0
    assert "a\tlikes\tb" in (pinned / "train.txt").read_text().splitlines()


def test_cli_delta_log_summarizes_and_rejects_corruption(tmp_path, capsys):
    log = _log_with(tmp_path, DeltaBatch(adds={"train": [("x", "r", "y")]}))
    assert main(["delta", "log", str(log.path)]) == 0
    out = capsys.readouterr().out
    assert "batches" in out and "chain fingerprint" in out

    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text('{"seq": 3, "adds": {}}\n')
    with pytest.raises(SystemExit, match="expected sequence 0"):
        main(["delta", "log", str(corrupt)])


def test_cli_delta_audit_check_verifies_against_reingest(tmp_path):
    source = _source_dir(tmp_path)
    log = _log_with(
        tmp_path,
        DeltaBatch(
            adds={"train": [("e", "likes", "a"), ("a", "likes", "e")]},
            removes={"valid": [("d", "likes", "b")]},
        ),
    )
    report_path = tmp_path / "audit.json"
    rc = main(
        [
            "delta", "audit",
            "--dataset", str(source),
            "--log", str(log.path),
            "--check",
            "--json", str(report_path),
        ]
    )
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["last_seq"] == 0
    assert set(report) >= {"state", "statistics", "redundancy", "leakage", "filters"}


def test_cli_delta_apply_rejects_missing_log(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "delta", "apply",
                "--dataset", str(_source_dir(tmp_path)),
                "--log", str(tmp_path / "nope.jsonl"),
                "--as-of", "0",
            ]
        )
