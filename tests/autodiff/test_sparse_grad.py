"""Tests for the sparse (row-indexed) gather gradients.

The contract under test: with ``Parameter.sparse_updates`` enabled, gather
backwards accumulate ``(indices, rows)`` segments into ``Parameter.sparse_grad``
whose coalesced / densified forms are **bit-identical** to what the dense
``np.add.at`` backward produces — including duplicate indices within a batch
and multiple gathers of the same parameter in one graph.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Parameter, SparseGrad, Tensor, numerical_gradient

NUM_ROWS = 12
DIM = 5


def _dense_reference(data, gathers):
    """The dense-path gradient of the same sequence of gather backwards."""
    parameter = Parameter(data.copy())
    for indices, grad in gathers:
        parameter.gather(indices).backward(grad)
    return parameter.grad


def _sparse_parameter(data, gathers):
    parameter = Parameter(data.copy(), sparse_updates=True)
    for indices, grad in gathers:
        parameter.gather(indices).backward(grad)
    return parameter


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_segments=st.integers(1, 4),
    lengths=st.lists(st.integers(1, 20), min_size=4, max_size=4),
)
def test_sparse_gather_matches_dense_add_at_reference(seed, num_segments, lengths):
    """Property: sparse-accumulated grad == dense ``np.add.at`` reference, bitwise."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(NUM_ROWS, DIM))
    gathers = [
        (
            rng.integers(0, NUM_ROWS, size=lengths[i]),      # duplicates likely
            rng.normal(size=(lengths[i], DIM)),
        )
        for i in range(num_segments)
    ]
    dense = _dense_reference(data, gathers)
    parameter = _sparse_parameter(data, gathers)

    assert parameter.sparse_grad is not None
    assert parameter.sparse_grad.num_segments == num_segments
    indices, rows = parameter.sparse_grad.coalesce()
    # Coalesced rows are exactly the dense gradient's touched rows ...
    assert np.array_equal(rows, dense[indices])
    # ... untouched rows are exactly zero in the dense reference ...
    untouched = np.setdiff1d(np.arange(NUM_ROWS), indices)
    assert not np.any(dense[untouched])
    # ... and both materializations agree bit-for-bit.
    assert np.array_equal(parameter.sparse_grad.to_dense(), dense)
    assert np.array_equal(parameter.grad, dense)  # .grad folds on demand


def test_duplicate_indices_within_one_gather_coalesce():
    parameter = Parameter(np.zeros((4, 2)), sparse_updates=True)
    indices = np.array([1, 1, 3, 1])
    grad = np.array([[1.0, 2.0], [10.0, 20.0], [5.0, 5.0], [100.0, 200.0]])
    parameter.gather(indices).backward(grad)
    unique, rows = parameter.sparse_grad.coalesce()
    assert unique.tolist() == [1, 3]
    np.testing.assert_array_equal(rows, [[111.0, 222.0], [5.0, 5.0]])


def test_sparse_gather_on_1d_parameter():
    """Bias-style (rows are scalars) tables coalesce too."""
    parameter = Parameter(np.zeros(6), sparse_updates=True)
    parameter.gather(np.array([2, 2, 5])).backward(np.array([1.0, 2.0, 4.0]))
    unique, rows = parameter.sparse_grad.coalesce()
    assert unique.tolist() == [2, 5]
    np.testing.assert_array_equal(rows, [3.0, 4.0])
    np.testing.assert_array_equal(parameter.grad, [0.0, 0.0, 3.0, 0.0, 0.0, 4.0])


def test_mixed_sparse_and_dense_contributions_fold_once():
    """A parameter used via gather *and* dense ops must not double count."""
    data = np.arange(8.0).reshape(4, 2)
    parameter = Parameter(data.copy(), sparse_updates=True)
    loss = parameter.gather(np.array([0, 1])).sum() + (parameter * 2.0).sum()
    loss.backward()
    expected = np.full((4, 2), 2.0)
    expected[0] += 1.0
    expected[1] += 1.0
    first_read = parameter.grad
    np.testing.assert_array_equal(first_read, expected)
    # Folding is idempotent: a second read returns the same array.
    np.testing.assert_array_equal(parameter.grad, expected)
    assert parameter.sparse_grad is None


def test_gradcheck_still_works_with_sparse_updates():
    """The on-demand dense fold keeps finite-difference gradcheck usable."""
    rng = np.random.default_rng(5)
    data = rng.normal(size=(6, 3))
    indices = np.array([0, 2, 2, 5])
    parameter = Parameter(data.copy(), sparse_updates=True)
    (parameter.gather(indices) ** 2).sum().backward()

    def objective(values):
        return float((values[indices] ** 2).sum())

    numeric = numerical_gradient(objective, data.copy())
    np.testing.assert_allclose(parameter.grad, numeric, atol=1e-6)


def test_gather_on_intermediate_tensor_stays_dense():
    """Only leaf Parameters route sparse; plain tensors keep np.add.at."""
    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    doubled = x * 2.0
    doubled.gather(np.array([0, 0, 2])).sum().backward()
    np.testing.assert_array_equal(x.grad, [4.0, 0.0, 2.0])


def test_zero_grad_clears_sparse_segments():
    parameter = Parameter(np.zeros((3, 2)), sparse_updates=True)
    parameter.gather(np.array([1])).backward(np.ones((1, 2)))
    assert not parameter.sparse_grad.is_empty()
    parameter.zero_grad()
    assert parameter.sparse_grad is None and parameter.dense_grad is None
    assert parameter.grad is None


def test_sparse_flag_defaults_off_and_survives_pickling():
    default = Parameter(np.zeros((2, 2)))
    assert default.sparse_updates is False
    default.gather(np.array([0])).backward(np.ones((1, 2)))
    assert default.sparse_grad is None          # dense route taken
    assert default.dense_grad is not None

    enabled = Parameter(np.arange(4.0).reshape(2, 2), sparse_updates=True)
    enabled.gather(np.array([1])).backward(np.ones((1, 2)))
    clone = pickle.loads(pickle.dumps(enabled))
    assert clone.sparse_updates is True
    assert clone.sparse_grad is None            # pending grads are not shipped
    assert clone.grad is None
    np.testing.assert_array_equal(clone.data, enabled.data)


def test_sparse_grad_empty_and_clear():
    sparse = SparseGrad((4, 2))
    assert sparse.is_empty() and sparse.entry_count() == 0
    assert sparse.touched_indices().size == 0
    indices, rows = sparse.coalesce()
    assert indices.size == 0 and rows.shape == (0, 2)
    np.testing.assert_array_equal(sparse.to_dense(), np.zeros((4, 2)))
    sparse.add([1, 2], np.ones((2, 2)))
    assert sparse.entry_count() == 2
    assert sparse.touched_indices().tolist() == [1, 2]
    sparse.clear()
    assert sparse.is_empty()
    with pytest.raises(ValueError):
        SparseGrad(())
