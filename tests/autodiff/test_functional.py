"""Tests for the functional layer: conv2d, losses, helpers."""

import numpy as np
import pytest

from repro.autodiff import (
    Parameter,
    Tensor,
    binary_cross_entropy_with_logits,
    conv2d,
    linear,
    logsigmoid,
    margin_ranking_loss,
    numerical_gradient,
    stack_rows,
)


def test_logsigmoid_matches_reference():
    x = Tensor(np.array([-50.0, -1.0, 0.0, 1.0, 50.0]))
    expected = -np.logaddexp(0.0, -x.data)
    np.testing.assert_allclose(logsigmoid(x).data, expected, atol=1e-9)


def test_bce_with_logits_matches_reference():
    logits_values = np.array([-2.0, -0.5, 0.0, 1.0, 3.0])
    targets = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
    logits = Tensor(logits_values, requires_grad=True)
    loss = binary_cross_entropy_with_logits(logits, targets)
    probs = 1.0 / (1.0 + np.exp(-logits_values))
    expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
    assert loss.item() == pytest.approx(expected, abs=1e-9)


def test_bce_gradient_is_sigmoid_minus_target():
    logits_values = np.array([0.3, -1.2, 2.0])
    targets = np.array([1.0, 0.0, 1.0])
    logits = Parameter(logits_values)
    binary_cross_entropy_with_logits(logits, targets).backward()
    probs = 1.0 / (1.0 + np.exp(-logits_values))
    np.testing.assert_allclose(logits.grad, (probs - targets) / 3.0, atol=1e-9)


def test_margin_ranking_loss_zero_when_margin_satisfied():
    positive = Tensor(np.array([5.0, 4.0]), requires_grad=True)
    negative = Tensor(np.array([1.0, 1.0]), requires_grad=True)
    loss = margin_ranking_loss(positive, negative, margin=1.0)
    assert loss.item() == pytest.approx(0.0)


def test_margin_ranking_loss_positive_when_violated():
    positive = Tensor(np.array([1.0]), requires_grad=True)
    negative = Tensor(np.array([1.5]), requires_grad=True)
    loss = margin_ranking_loss(positive, negative, margin=1.0)
    assert loss.item() == pytest.approx(1.5)


def test_stack_rows():
    rows = [Tensor(np.array([1.0, 2.0])), Tensor(np.array([3.0, 4.0]))]
    stacked = stack_rows(rows)
    np.testing.assert_allclose(stacked.data, [[1.0, 2.0], [3.0, 4.0]])
    with pytest.raises(ValueError):
        stack_rows([])


def test_linear_matches_affine():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(5, 3)))
    w = Tensor(rng.normal(size=(4, 3)))
    b = Tensor(rng.normal(size=(4,)))
    out = linear(x, w, b)
    np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data, atol=1e-12)


# ------------------------------------------------------------------ conv2d
def test_conv2d_forward_matches_naive():
    rng = np.random.default_rng(1)
    images = rng.normal(size=(2, 2, 5, 6))
    kernels = rng.normal(size=(3, 2, 2, 3))
    bias = rng.normal(size=(3,))
    out = conv2d(Tensor(images), Tensor(kernels), Tensor(bias)).data
    assert out.shape == (2, 3, 4, 4)
    # Naive reference convolution.
    for n in range(2):
        for f in range(3):
            for i in range(4):
                for j in range(4):
                    patch = images[n, :, i:i + 2, j:j + 3]
                    expected = (patch * kernels[f]).sum() + bias[f]
                    assert out[n, f, i, j] == pytest.approx(expected, abs=1e-9)


def test_conv2d_gradients_match_finite_differences():
    rng = np.random.default_rng(2)
    images = rng.normal(size=(2, 1, 4, 5))
    kernels = rng.normal(size=(2, 1, 2, 2))
    bias = rng.normal(size=(2,))

    image_tensor = Parameter(images.copy())
    kernel_tensor = Parameter(kernels.copy())
    bias_tensor = Parameter(bias.copy())
    (conv2d(image_tensor, kernel_tensor, bias_tensor).relu() ** 2).sum().backward()

    def loss_for_kernels(raw):
        return float((np.maximum(conv2d(Tensor(images), Tensor(raw), Tensor(bias)).data, 0) ** 2).sum())

    def loss_for_images(raw):
        return float((np.maximum(conv2d(Tensor(raw), Tensor(kernels), Tensor(bias)).data, 0) ** 2).sum())

    def loss_for_bias(raw):
        return float((np.maximum(conv2d(Tensor(images), Tensor(kernels), Tensor(raw)).data, 0) ** 2).sum())

    np.testing.assert_allclose(
        kernel_tensor.grad, numerical_gradient(loss_for_kernels, kernels.copy()), atol=1e-4
    )
    np.testing.assert_allclose(
        image_tensor.grad, numerical_gradient(loss_for_images, images.copy()), atol=1e-4
    )
    np.testing.assert_allclose(
        bias_tensor.grad, numerical_gradient(loss_for_bias, bias.copy()), atol=1e-4
    )


def test_conv2d_rejects_channel_mismatch():
    with pytest.raises(ValueError):
        conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 2, 2))))


def test_conv2d_rejects_oversized_kernel():
    with pytest.raises(ValueError):
        conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 3, 3))))
