"""Gradient checks for every autodiff operator against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Parameter, Tensor, numerical_gradient

RNG = np.random.default_rng(0)


def check_gradient(build, shape, atol=1e-6):
    """Compare autodiff gradient of scalar ``build(tensor)`` with finite differences."""
    values = RNG.normal(size=shape)
    tensor = Parameter(values.copy())
    build(tensor).backward()

    def scalar(raw):
        return build(Tensor(raw, requires_grad=True)).item()

    numeric = numerical_gradient(scalar, values.copy())
    assert tensor.grad is not None
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


# ------------------------------------------------------------------ elementwise & arithmetic
@pytest.mark.parametrize(
    "name,build",
    [
        ("add", lambda x: (x + 2.0).sum()),
        ("radd", lambda x: (3.0 + x).sum()),
        ("sub", lambda x: (x - 1.5).sum()),
        ("rsub", lambda x: (1.5 - x).sum()),
        ("neg", lambda x: (-x).sum()),
        ("mul", lambda x: (x * 3.0).sum()),
        ("div", lambda x: (x / 2.0).sum()),
        ("rdiv", lambda x: (2.0 / (x * x + 1.0)).sum()),
        ("pow", lambda x: (x ** 3).sum()),
        ("exp", lambda x: x.exp().sum()),
        ("abs", lambda x: (x + 0.37).abs().sum()),
        ("sigmoid", lambda x: x.sigmoid().sum()),
        ("tanh", lambda x: x.tanh().sum()),
        ("relu", lambda x: (x + 0.21).relu().sum()),
        ("softplus", lambda x: x.softplus().sum()),
        ("sqrt", lambda x: (x * x + 1.0).sqrt().sum()),
        ("cos", lambda x: x.cos().sum()),
        ("sin", lambda x: x.sin().sum()),
        ("clamp_min", lambda x: (x + 0.13).clamp_min(0.0).sum()),
        ("mean", lambda x: (x * x).mean()),
        ("sum_axis", lambda x: (x.sum(axis=1) ** 2).sum()),
        ("max_axis", lambda x: x.max(axis=1).sum()),
        ("reshape", lambda x: (x.reshape(6, 2) ** 2).sum()),
        ("transpose", lambda x: (x.transpose() @ x).sum()),
        ("chain", lambda x: ((x * 2 + 1).sigmoid() * x.tanh()).sum()),
    ],
)
def test_unary_and_binary_op_gradients(name, build):
    check_gradient(build, (4, 3))


def test_mul_gradient_flows_to_both_operands():
    a = Parameter(RNG.normal(size=(3, 3)))
    b = Parameter(RNG.normal(size=(3, 3)))
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b.data)
    np.testing.assert_allclose(b.grad, a.data)


def test_matmul_gradients():
    a_values = RNG.normal(size=(4, 3))
    b_values = RNG.normal(size=(3, 2))
    a = Parameter(a_values.copy())
    b = Parameter(b_values.copy())
    ((a @ b) ** 2).sum().backward()
    numeric_a = numerical_gradient(
        lambda raw: ((Tensor(raw) @ Tensor(b_values)).data ** 2).sum(), a_values.copy()
    )
    numeric_b = numerical_gradient(
        lambda raw: ((Tensor(a_values) @ Tensor(raw)).data ** 2).sum(), b_values.copy()
    )
    np.testing.assert_allclose(a.grad, numeric_a, atol=1e-5)
    np.testing.assert_allclose(b.grad, numeric_b, atol=1e-5)


def test_batched_matmul_gradients():
    check_gradient(lambda x: ((x @ x.transpose(0, 2, 1)) ** 2).sum(), (2, 3, 4), atol=1e-5)


def test_broadcasting_gradient_shapes():
    a = Parameter(RNG.normal(size=(4, 1)))
    b = Parameter(RNG.normal(size=(1, 5)))
    (a * b + a).sum().backward()
    assert a.grad.shape == (4, 1)
    assert b.grad.shape == (1, 5)


def test_gather_accumulates_repeated_indices():
    table = Parameter(np.zeros((5, 2)))
    indices = np.array([1, 1, 3])
    (table.gather(indices) + 1.0).sum().backward()
    expected = np.zeros((5, 2))
    expected[1] = 2.0
    expected[3] = 1.0
    np.testing.assert_allclose(table.grad, expected)


def test_concat_gradient_splits_correctly():
    a = Parameter(RNG.normal(size=(2, 3)))
    b = Parameter(RNG.normal(size=(2, 2)))
    out = a.concat([b], axis=1)
    (out * np.arange(10).reshape(2, 5)).sum().backward()
    np.testing.assert_allclose(a.grad, np.arange(10).reshape(2, 5)[:, :3])
    np.testing.assert_allclose(b.grad, np.arange(10).reshape(2, 5)[:, 3:])


def test_dropout_identity_when_not_training():
    x = Parameter(RNG.normal(size=(4, 4)))
    rng = np.random.default_rng(0)
    assert x.dropout(0.5, rng, training=False) is x
    assert x.dropout(0.0, rng, training=True) is x


def test_dropout_scales_kept_units():
    x = Parameter(np.ones((1000,)))
    rng = np.random.default_rng(0)
    out = x.dropout(0.5, rng, training=True)
    kept = out.data[out.data > 0]
    np.testing.assert_allclose(kept, 2.0)
    out.sum().backward()
    assert x.grad is not None


# ------------------------------------------------------------------ mechanics
def test_backward_requires_grad():
    with pytest.raises(RuntimeError):
        Tensor(np.ones(3)).backward()


def test_gradients_accumulate_across_backward_calls():
    x = Parameter(np.array([1.0, 2.0]))
    (x * 2).sum().backward()
    (x * 2).sum().backward()
    np.testing.assert_allclose(x.grad, [4.0, 4.0])
    x.zero_grad()
    assert x.grad is None


def test_detach_stops_gradient():
    x = Parameter(np.array([1.0, 2.0]))
    y = x.detach()
    assert y.requires_grad is False


def test_diamond_graph_gradient():
    """A value used twice must receive the sum of both path gradients."""
    x = Parameter(np.array([3.0]))
    y = x * 2
    z = y + y * y
    z.sum().backward()
    # d/dx (2x + 4x^2) = 2 + 8x = 26 at x=3
    np.testing.assert_allclose(x.grad, [26.0])


def test_pow_rejects_tensor_exponent():
    x = Parameter(np.ones(2))
    with pytest.raises(TypeError):
        x ** np.ones(2)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(-3, 3), min_size=2, max_size=8),
    st.lists(st.floats(-3, 3), min_size=2, max_size=8),
)
def test_property_sum_linearity(first, second):
    """backward of a linear combination equals the combination of coefficients."""
    n = min(len(first), len(second))
    a = Parameter(np.array(first[:n]))
    weights = np.array(second[:n])
    (a * weights).sum().backward()
    np.testing.assert_allclose(a.grad, weights, atol=1e-9)
