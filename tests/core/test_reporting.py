"""Tests for the plain-text table rendering helpers."""

from repro.core import format_cell, render_key_values, render_matrix, render_table


def test_format_cell_variants():
    assert format_cell(None) == "-"
    assert format_cell(float("nan")) == "-"
    assert format_cell(0.12345) == "0.123"
    assert format_cell(12.345) == "12.3"
    assert format_cell(1234.5) == "1234"
    assert format_cell(7) == "7"
    assert format_cell("TransE") == "TransE"


def test_render_table_alignment_and_content():
    rows = [
        {"model": "TransE", "FMRR": 0.391},
        {"model": "ComplEx", "FMRR": 0.685},
    ]
    text = render_table(rows, title="Results")
    lines = text.splitlines()
    assert lines[0] == "Results"
    assert "model" in lines[1] and "FMRR" in lines[1]
    assert "TransE" in text and "0.685" in text
    # All data lines share the header's width.
    assert len(set(len(line) for line in lines[1:])) == 1


def test_render_table_empty():
    assert "(empty)" in render_table([], title="Nothing")


def test_render_table_respects_column_selection():
    rows = [{"a": 1, "b": 2}]
    text = render_table(rows, columns=["b"])
    assert "b" in text and "a" not in text.splitlines()[0]


def test_render_matrix():
    matrix = {"TransE": {"1-1": 3, "n-m": 1}, "RotatE": {"1-1": 0, "n-m": 5}}
    text = render_matrix(matrix, row_label="model", title="Wins")
    assert "Wins" in text
    assert "TransE" in text and "RotatE" in text
    assert "1-1" in text and "n-m" in text


def test_render_key_values():
    text = render_key_values({"share": 0.7, "count": 12}, title="Stats")
    assert text.splitlines()[0] == "Stats"
    assert "share: 0.700" in text
    assert "count: 12" in text
