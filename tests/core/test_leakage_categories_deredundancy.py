"""Tests for leakage analysis, relation categories, de-redundancy and baselines."""

import pytest

from repro.core import (
    SimpleRuleModel,
    analyse_leakage,
    categorize_relations,
    category_distribution,
    dataset_relation_categories,
    make_fb15k237_like,
    make_wn18rr_like,
    make_yago_dr_like,
    relation_cardinality,
    triples_per_category,
)
from repro.kg import TripleSet


# ------------------------------------------------------------------ leakage
def test_leakage_on_toy_dataset(toy_dataset):
    report = analyse_leakage(toy_dataset)
    # Test triple (5, films_directed, 2): its reverse counterpart
    # (2, directed_by, 5) is in the training set, so the reverse bit is set;
    # (3, born_in, 7) has no redundancy at all.
    by_triple = {item.triple: item for item in report.per_triple}
    assert by_triple[(5, 1, 2)].reverse_in_train is True
    assert by_triple[(3, 3, 7)].has_any_redundancy is False
    assert by_triple[(3, 3, 7)].bitmap == "0000"
    assert 0.0 < report.test_reverse_in_train_share < 1.0
    assert report.training_reverse_share > 0.5  # most toy training triples are paired


def test_leakage_bitmap_breakdown_sums_to_100(toy_dataset):
    report = analyse_leakage(toy_dataset)
    assert sum(report.bitmap_breakdown().values()) == pytest.approx(100.0)


def test_leakage_slices_partition_test_set(fb_tiny):
    report = analyse_leakage(fb_tiny)
    redundant = report.redundant_test_triples()
    clean = report.clean_test_triples()
    assert redundant.isdisjoint(clean)
    assert len(redundant) + len(clean) <= len(fb_tiny.test)
    # FB15k-like must show heavy leakage, as the paper reports for FB15k.
    assert report.test_reverse_in_train_share > 0.4
    assert report.training_reverse_share > 0.4


def test_wn_leakage_is_higher_than_fb(fb_tiny, wn_tiny):
    fb_report = analyse_leakage(fb_tiny)
    wn_report = analyse_leakage(wn_tiny)
    assert wn_report.training_reverse_share > fb_report.training_reverse_share


# ------------------------------------------------------------------ categories
def test_relation_cardinality_categories():
    one_to_one = TripleSet([(i, 0, i + 50) for i in range(10)])
    assert relation_cardinality(one_to_one, 0).category == "1-1"
    one_to_n = TripleSet([(0, 0, i) for i in range(10)])
    assert relation_cardinality(one_to_n, 0).category == "1-n"
    n_to_one = TripleSet([(i, 0, 99) for i in range(10)])
    assert relation_cardinality(n_to_one, 0).category == "n-1"
    n_to_m = TripleSet([(i % 4, 0, 50 + (i % 3)) for i in range(12)])
    assert relation_cardinality(n_to_m, 0).category == "n-m"


def test_categorize_relations_and_distribution():
    ts = TripleSet(
        [(i, 0, i + 50) for i in range(6)] + [(0, 1, i) for i in range(6)]
    )
    categories = categorize_relations(ts)
    assert categories[0] == "1-1"
    assert categories[1] == "1-n"
    distribution = category_distribution(categories)
    assert distribution["1-1"] == 1 and distribution["1-n"] == 1
    counts = triples_per_category(ts, categories)
    assert counts["1-1"] == 6 and counts["1-n"] == 6


def test_dataset_relation_categories_cover_test_relations(fb_tiny):
    categories = dataset_relation_categories(fb_tiny)
    assert set(categories) == set(fb_tiny.test_relations())
    assert set(categories.values()) <= {"1-1", "1-n", "n-1", "n-m"}


# ------------------------------------------------------------------ de-redundancy
def test_fb15k237_transform_drops_relations_and_leaked_triples(fb_tiny):
    derived = make_fb15k237_like(fb_tiny)
    assert derived.all_triples().num_relations < fb_tiny.all_triples().num_relations
    assert len(derived.train) < len(fb_tiny.train)
    # No test triple may have its entity pair directly linked in training.
    linked = set()
    for h, _, t in derived.train:
        linked.add((h, t))
        linked.add((t, h))
    for h, _, t in derived.test:
        assert (h, t) not in linked


def test_fb15k237_transform_reduces_leakage(fb_tiny):
    original = analyse_leakage(fb_tiny)
    derived = make_fb15k237_like(fb_tiny)
    transformed = analyse_leakage(derived)
    assert transformed.test_reverse_in_train_share < original.test_reverse_in_train_share


def test_wn18rr_transform_keeps_symmetric_relations(wn_tiny):
    derived = make_wn18rr_like(wn_tiny)
    names = {derived.relation_name(r) for r in derived.train.relations}
    assert "derivationally_related_form" in names
    # One of each reverse pair must be gone.
    assert not ({"hypernym", "hyponym"} <= names)
    assert derived.all_triples().num_relations < wn_tiny.all_triples().num_relations


def test_yago_dr_transform_removes_duplicate_and_dedupes_symmetric(yago_tiny):
    derived = make_yago_dr_like(yago_tiny)
    names = {derived.relation_name(r) for r in derived.train.relations}
    # Only one of the isAffiliatedTo / playsFor pair survives.
    assert not ({"isAffiliatedTo", "playsFor"} <= names)
    married = yago_tiny.relation_id("isMarriedTo")
    pairs = derived.train.pairs_of(married)
    assert all((t, h) not in pairs for h, t in pairs)


def test_transforms_share_vocabulary(fb_tiny):
    derived = make_fb15k237_like(fb_tiny)
    assert derived.vocab is fb_tiny.vocab
    assert "deredundancy" in derived.metadata.notes


# ------------------------------------------------------------------ simple rule baseline
def test_simple_rule_model_learns_reverse_rule(toy_dataset):
    model = SimpleRuleModel(toy_dataset.train, toy_dataset.num_entities)
    assert model.num_rules() >= 2
    films_directed = toy_dataset.relation_id("films_directed")
    # (2, directed_by, 5) is in training, so the query (5, films_directed, ?)
    # must put entity 2 at score 1.
    scores = model.score_all_tails(5, films_directed)
    assert scores[2] == pytest.approx(1.0)
    # (0, directed_by, 4) is in training, so (?, films_directed, 0) → entity 4.
    heads = model.score_all_heads(films_directed, 0)
    assert heads[4] == pytest.approx(1.0)


def test_simple_rule_model_silent_on_plain_relations(toy_dataset):
    model = SimpleRuleModel(toy_dataset.train, toy_dataset.num_entities)
    born_in = toy_dataset.relation_id("born_in")
    assert model.score_all_tails(0, born_in).sum() == 0.0


def test_simple_rule_model_strong_on_wn_replica(wn_tiny):
    from repro.eval import evaluate_model

    model = SimpleRuleModel(wn_tiny.train, wn_tiny.num_entities)
    result = evaluate_model(model, wn_tiny)
    # The paper's simple model attains FHits@1 ≈ 96 % on WN18; the replica must
    # at least make it the dominant signal.
    assert result.filtered_metrics().hits_at_1 > 0.5
