"""Tests for the redundancy detectors and Cartesian-product analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CartesianProductPredictor,
    analyse_redundancy,
    cartesian_density,
    find_cartesian_relations,
    find_duplicate_relations,
    find_reverse_duplicate_relations,
    find_symmetric_relations,
    relation_overlap,
)
from repro.kg import TripleSet


# ------------------------------------------------------------------ handcrafted fixtures
def reverse_pair_kg(n: int = 20) -> TripleSet:
    """Relation 1 is the exact reverse of relation 0."""
    triples = []
    for i in range(n):
        triples.append((i, 0, i + 100))
        triples.append((i + 100, 1, i))
    return TripleSet(triples)


def duplicate_kg(overlap: int = 18, extra: int = 2) -> TripleSet:
    """Relation 1 duplicates relation 0 on ``overlap`` of its pairs."""
    triples = []
    for i in range(overlap + extra):
        triples.append((i, 0, i + 100))
        if i < overlap:
            triples.append((i, 1, i + 100))
        else:
            triples.append((i, 1, i + 200))
    return TripleSet(triples)


# ------------------------------------------------------------------ overlap / duplicates
def test_relation_overlap_shares():
    kg = duplicate_kg()
    overlap = relation_overlap(kg, 0, 1)
    assert overlap.overlap == 18
    assert overlap.share_of_a == pytest.approx(0.9)
    assert overlap.share_of_b == pytest.approx(0.9)
    assert overlap.exceeds(0.8, 0.8)
    assert not overlap.exceeds(0.95, 0.8)


def test_find_duplicate_relations_detects_engineered_pair():
    found = find_duplicate_relations(duplicate_kg())
    assert len(found) == 1
    pair = {found[0].relation_a, found[0].relation_b}
    assert pair == {0, 1}


def test_find_duplicate_relations_respects_thresholds():
    assert find_duplicate_relations(duplicate_kg(), theta_1=0.95, theta_2=0.95) == []


def test_find_reverse_duplicate_relations():
    found = find_reverse_duplicate_relations(reverse_pair_kg())
    assert len(found) == 1
    assert found[0].reversed_b is True


def test_find_symmetric_relations():
    triples = []
    for i in range(0, 20, 2):
        triples.append((i, 0, i + 1))
        triples.append((i + 1, 0, i))
    triples.extend([(0, 1, 5), (2, 1, 7)])
    symmetric = find_symmetric_relations(TripleSet(triples))
    assert symmetric == [0]


def test_analyse_redundancy_classifies_crisp_reverse_pairs():
    report = analyse_redundancy(reverse_pair_kg())
    assert len(report.reverse_pairs) == 1
    assert report.reverse_duplicate_pairs == []
    assert report.redundant_relations() == {0, 1}
    partners = report.reverse_partners()
    assert partners[0] == {1} and partners[1] == {0}


def test_analyse_redundancy_keeps_loose_overlap_as_reverse_duplicate():
    triples = []
    for i in range(20):
        triples.append((i, 0, i + 100))
        if i < 17:
            triples.append((i + 100, 1, i))
        else:
            triples.append((i + 100, 1, (i + 1) % 20))
    report = analyse_redundancy(TripleSet(triples))
    assert len(report.reverse_duplicate_pairs) == 1
    assert report.reverse_pairs == []


def test_detectors_against_generator_provenance(fb_tiny):
    """Every relation the generator marked as a reverse pair must be detected."""
    report = analyse_redundancy(fb_tiny.all_triples())
    detected = report.redundant_relations()
    for relation_id in range(fb_tiny.num_relations):
        provenance = fb_tiny.provenance_of(relation_id)
        if provenance.kind == "reverse_pair":
            assert relation_id in detected, fb_tiny.relation_name(relation_id)


# ------------------------------------------------------------------ Cartesian relations
def cartesian_kg(subjects: int = 6, objects: int = 5, coverage: float = 1.0) -> TripleSet:
    triples = []
    cells = [(s, 100 + o) for s in range(subjects) for o in range(objects)]
    keep = int(round(coverage * len(cells)))
    for s, o in cells[:keep]:
        triples.append((s, 0, o))
    return TripleSet(triples)


def test_cartesian_density_full_grid():
    assert cartesian_density(cartesian_kg(), 0) == pytest.approx(1.0)
    assert cartesian_density(TripleSet(), 0) == 0.0


def test_find_cartesian_relations_detects_grid():
    found = find_cartesian_relations(cartesian_kg(coverage=0.9))
    assert [item.relation for item in found] == [0]
    assert found[0].density > 0.8


def test_find_cartesian_relations_rejects_sparse_and_degenerate():
    assert find_cartesian_relations(cartesian_kg(coverage=0.4)) == []
    # Single-object star relations are not Cartesian grids.
    star = TripleSet([(i, 0, 99) for i in range(20)])
    assert find_cartesian_relations(star) == []


def test_find_cartesian_relations_in_fb_replica(fb_tiny):
    detected = find_cartesian_relations(fb_tiny.all_triples(), density_threshold=0.75)
    names = {fb_tiny.relation_name(item.relation) for item in detected}
    assert any("climate" in name for name in names)
    # Every detected relation must have been generated as Cartesian or be a
    # dense grid by construction.
    for item in detected:
        provenance = fb_tiny.provenance_of(item.relation)
        assert provenance.cartesian or item.density > 0.75


def test_cartesian_predictor_scores_grid_members():
    kg = cartesian_kg(coverage=0.9)
    predictor = CartesianProductPredictor(kg, num_entities=120)
    assert predictor.is_cartesian(0)
    tail_scores = predictor.score_all_tails(0, 0)
    assert tail_scores[100] > 0.9
    assert tail_scores[50] < 0.5
    head_scores = predictor.score_all_heads(0, 100)
    assert head_scores[2] > 0.9


def test_cartesian_predictor_fallback_for_normal_relations():
    kg = TripleSet([(0, 0, 10), (1, 0, 11), (2, 0, 12), (3, 0, 13)])
    predictor = CartesianProductPredictor(kg, num_entities=20)
    assert not predictor.is_cartesian(0)
    scores = predictor.score_all_tails(0, 0)
    assert 0 < scores[10] <= 0.5
    assert predictor.name == "CartesianProduct"


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 8), st.integers(2, 8))
def test_property_full_grid_is_always_detected(subjects, objects):
    kg = cartesian_kg(subjects, objects, coverage=1.0)
    found = find_cartesian_relations(kg)
    assert [item.relation for item in found] == [0]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 3), st.integers(0, 15)), max_size=60))
def test_property_overlap_shares_bounded(raw):
    kg = TripleSet(raw)
    relations = kg.relations
    if len(relations) < 2:
        return
    overlap = relation_overlap(kg, relations[0], relations[1])
    assert 0.0 <= overlap.share_of_a <= 1.0
    assert 0.0 <= overlap.share_of_b <= 1.0


# ------------------------------------------------------------------ inverted-index generator
def _brute_force_pairs(triples, theta_1, theta_2, reversed_b):
    """The original O(R²) nested-loop scan, kept as the reference behaviour."""
    relations = triples.relations
    found = []
    for index, relation_a in enumerate(relations):
        for relation_b in relations[index + 1:]:
            overlap = relation_overlap(triples, relation_a, relation_b, reversed_b=reversed_b)
            if overlap.overlap and overlap.exceeds(theta_1, theta_2):
                found.append(overlap)
    return found


@pytest.mark.parametrize("reversed_b", [False, True])
@pytest.mark.parametrize("theta", [0.0, 0.5, 0.8])
def test_inverted_index_matches_brute_force_on_fb_replica(fb_tiny, reversed_b, theta):
    triples = fb_tiny.all_triples()
    finder = find_reverse_duplicate_relations if reversed_b else find_duplicate_relations
    expected = _brute_force_pairs(triples, theta, theta, reversed_b)
    assert finder(triples, theta, theta) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 4), st.integers(0, 8)), max_size=80))
def test_property_inverted_index_matches_brute_force(raw):
    kg = TripleSet(raw)
    for reversed_b in (False, True):
        finder = find_reverse_duplicate_relations if reversed_b else find_duplicate_relations
        assert finder(kg, 0.3, 0.3) == _brute_force_pairs(kg, 0.3, 0.3, reversed_b)


def test_cartesian_predictor_batched_rows_match_single_queries():
    kg = cartesian_kg(coverage=0.9)
    predictor = CartesianProductPredictor(kg, num_entities=120)
    heads = np.array([0, 1, 0])
    relations = np.array([0, 0, 0])
    batched = predictor.score_tails_batch(heads, relations)
    assert batched.shape == (3, 120)
    for row, (h, r) in zip(batched, zip(heads, relations)):
        np.testing.assert_array_equal(row, predictor.score_all_tails(int(h), int(r)))
