"""Shared fixtures: tiny synthetic benchmarks and a handcrafted toy dataset."""

from __future__ import annotations

import pytest

from repro.kg import (
    Dataset,
    DatasetMetadata,
    RelationProvenance,
    TripleSet,
    Vocabulary,
    fb15k_like,
    wn18_like,
    yago3_like,
)


@pytest.fixture(scope="session")
def fb_tiny_pair():
    """The tiny FB15k-like benchmark and its simulated Freebase snapshot."""
    return fb15k_like("tiny", seed=13)


@pytest.fixture(scope="session")
def fb_tiny(fb_tiny_pair) -> Dataset:
    return fb_tiny_pair[0]


@pytest.fixture(scope="session")
def freebase_snapshot(fb_tiny_pair):
    return fb_tiny_pair[1]


@pytest.fixture(scope="session")
def wn_tiny() -> Dataset:
    return wn18_like("tiny", seed=16)


@pytest.fixture(scope="session")
def yago_tiny() -> Dataset:
    return yago3_like("tiny", seed=21)


@pytest.fixture()
def toy_dataset() -> Dataset:
    """A handcrafted 8-entity dataset with a known reverse pair and a symmetric relation.

    Relations:
      0 directed_by      (film -> person), reverse of 1
      1 films_directed   (person -> film), reverse of 0
      2 married_to       symmetric
      3 born_in          plain n-1
    Entities 0-3 are films/persons, 4-7 are persons/cities.
    """
    vocab = Vocabulary.from_labels(
        [f"e{i}" for i in range(8)],
        ["directed_by", "films_directed", "married_to", "born_in"],
    )
    train = TripleSet(
        [
            (0, 0, 4), (4, 1, 0),
            (1, 0, 4), (4, 1, 1),
            (2, 0, 5),
            (4, 2, 5), (5, 2, 4),
            (6, 2, 7), (7, 2, 6),
            (0, 3, 6), (1, 3, 6), (2, 3, 7),
        ]
    )
    valid = TripleSet([(3, 0, 5), (5, 1, 3)])
    test = TripleSet([(3, 3, 7), (5, 1, 2)])
    metadata = DatasetMetadata(
        source="handcrafted",
        relation_provenance={
            "directed_by": RelationProvenance("directed_by", "reverse_pair", reverse_of="films_directed"),
            "films_directed": RelationProvenance("films_directed", "reverse_pair", reverse_of="directed_by"),
            "married_to": RelationProvenance("married_to", "symmetric", symmetric=True),
            "born_in": RelationProvenance("born_in", "normal"),
        },
        reverse_property_pairs=[("directed_by", "films_directed")],
    )
    dataset = Dataset(
        name="toy", vocab=vocab, train=train, valid=valid, test=test, metadata=metadata
    )
    dataset.validate()
    return dataset
