"""Shared fixtures: tiny synthetic benchmarks, a handcrafted toy dataset, and
the multi-process test guard (skip without fork/spawn, cap worker counts)."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.kg import (
    Dataset,
    DatasetMetadata,
    RelationProvenance,
    TripleSet,
    Vocabulary,
    fb15k_like,
    wn18_like,
    yago3_like,
)


def _multiprocessing_supported() -> bool:
    return bool(multiprocessing.get_all_start_methods())


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "multiprocess: the test spawns evaluation worker processes; skipped on "
        "platforms without fork/spawn/forkserver support",
    )


def pytest_collection_modifyitems(config, items):
    """Skip ``multiprocess``-marked tests where no start method exists."""
    if _multiprocessing_supported():
        return
    skip = pytest.mark.skip(reason="platform supports no multiprocessing start method")
    for item in items:
        if "multiprocess" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def capped_workers():
    """Clamp requested evaluation worker counts to ``REPRO_TEST_MAX_WORKERS``.

    CI runners set the variable so multi-process tests never oversubscribe the
    shared machines; without it the requested count is used as-is.  The clamp
    never changes results — sharded ranks are bit-identical at any count.
    """

    def cap(requested: int) -> int:
        limit = os.environ.get("REPRO_TEST_MAX_WORKERS", "").strip()
        if limit:
            return max(1, min(int(requested), int(limit)))
        return int(requested)

    return cap


@pytest.fixture(scope="session")
def fb_tiny_pair():
    """The tiny FB15k-like benchmark and its simulated Freebase snapshot."""
    return fb15k_like("tiny", seed=13)


@pytest.fixture(scope="session")
def fb_tiny(fb_tiny_pair) -> Dataset:
    return fb_tiny_pair[0]


@pytest.fixture(scope="session")
def freebase_snapshot(fb_tiny_pair):
    return fb_tiny_pair[1]


@pytest.fixture(scope="session")
def wn_tiny() -> Dataset:
    return wn18_like("tiny", seed=16)


@pytest.fixture(scope="session")
def yago_tiny() -> Dataset:
    return yago3_like("tiny", seed=21)


@pytest.fixture()
def toy_dataset() -> Dataset:
    """A handcrafted 8-entity dataset with a known reverse pair and a symmetric relation.

    Relations:
      0 directed_by      (film -> person), reverse of 1
      1 films_directed   (person -> film), reverse of 0
      2 married_to       symmetric
      3 born_in          plain n-1
    Entities 0-3 are films/persons, 4-7 are persons/cities.
    """
    vocab = Vocabulary.from_labels(
        [f"e{i}" for i in range(8)],
        ["directed_by", "films_directed", "married_to", "born_in"],
    )
    train = TripleSet(
        [
            (0, 0, 4), (4, 1, 0),
            (1, 0, 4), (4, 1, 1),
            (2, 0, 5),
            (4, 2, 5), (5, 2, 4),
            (6, 2, 7), (7, 2, 6),
            (0, 3, 6), (1, 3, 6), (2, 3, 7),
        ]
    )
    valid = TripleSet([(3, 0, 5), (5, 1, 3)])
    test = TripleSet([(3, 3, 7), (5, 1, 2)])
    metadata = DatasetMetadata(
        source="handcrafted",
        relation_provenance={
            "directed_by": RelationProvenance("directed_by", "reverse_pair", reverse_of="films_directed"),
            "films_directed": RelationProvenance("films_directed", "reverse_pair", reverse_of="directed_by"),
            "married_to": RelationProvenance("married_to", "symmetric", symmetric=True),
            "born_in": RelationProvenance("born_in", "normal"),
        },
        reverse_property_pairs=[("directed_by", "films_directed")],
    )
    dataset = Dataset(
        name="toy", vocab=vocab, train=train, valid=valid, test=test, metadata=metadata
    )
    dataset.validate()
    return dataset
