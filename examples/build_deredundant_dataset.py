"""Build de-redundant dataset variants and export them in the standard layout.

Run with ``python examples/build_deredundant_dataset.py [output_dir]``.

The paper argues FB15k, WN18 and YAGO3-10 should not be used anymore and that
their de-redundant variants (FB15k-237, WN18RR, YAGO3-10-DR) should be used
instead.  This example packages that recommendation as a pipeline: it builds
the three raw replicas, applies the corresponding de-redundancy transforms,
prints the before/after Table-1 statistics, and writes all six datasets as
``train.txt`` / ``valid.txt`` / ``test.txt`` directories that any KG-embedding
toolkit can consume.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core import (
    analyse_leakage,
    make_fb15k237_like,
    make_wn18rr_like,
    make_yago_dr_like,
    render_table,
)
from repro.kg import dataset_statistics, fb15k_like, save_dataset, wn18_like, yago3_like


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("exported_datasets")

    fb15k, _ = fb15k_like(scale="tiny", seed=13)
    wn18 = wn18_like(scale="tiny", seed=16)
    yago = yago3_like(scale="tiny", seed=21)

    pairs = [
        (fb15k, make_fb15k237_like(fb15k)),
        (wn18, make_wn18rr_like(wn18)),
        (yago, make_yago_dr_like(yago)),
    ]

    rows = []
    for original, derived in pairs:
        for dataset in (original, derived):
            row = dataset_statistics(dataset).as_row()
            row["test reverse-in-train %"] = 100 * analyse_leakage(dataset).test_reverse_in_train_share
            rows.append(row)
            save_dataset(dataset, output_dir / dataset.name)
    print(render_table(rows, title="Raw replicas vs de-redundant variants"))
    print(f"\nAll six datasets written under {output_dir.resolve()} in the "
          "train.txt/valid.txt/test.txt TSV layout (plus metadata.json provenance).")


if __name__ == "__main__":
    main()
