"""Quickstart: build a benchmark replica, train a model, evaluate it.

Run with ``python examples/quickstart.py``.

The script walks through the core workflow of the library:

1. generate the FB15k-like synthetic benchmark (a structural replica of the
   paper's FB15k, including its reverse relations and Cartesian products),
2. train a TransE model on it with the shared trainer,
3. evaluate link prediction with raw and filtered metrics,
4. compare against the AMIE-style rule miner and the paper's simple
   statistics-based rule model.
"""

from __future__ import annotations

from repro.core import SimpleRuleModel, render_table
from repro.eval import evaluate_model
from repro.kg import dataset_statistics, fb15k_like
from repro.models import ModelConfig, TrainingConfig, make_model, train_model
from repro.rules import AmieConfig, AmieMiner, RuleBasedPredictor


def main() -> None:
    # 1. A scaled-down structural replica of FB15k (see DESIGN.md §2 for the
    #    substitution rationale).
    dataset, snapshot = fb15k_like(scale="tiny", seed=13)
    print(render_table([dataset_statistics(dataset).as_row()], title="Dataset"))
    print(f"Simulated Freebase snapshot: {len(snapshot.triples)} triples, "
          f"{len(snapshot.reverse_property_pairs)} reverse_property pairs\n")

    # 2. Train TransE.
    model = make_model("TransE", dataset.num_entities, dataset.num_relations,
                       ModelConfig(dim=24, seed=0))
    result = train_model(model, dataset,
                         TrainingConfig(epochs=40, batch_size=256, num_negatives=4,
                                        learning_rate=0.05, verbose=True, log_every=20))
    print(f"\nTrained {result.model_name} for {result.epochs_run} epochs "
          f"in {result.seconds:.1f}s (final loss {result.final_loss:.4f})\n")

    # 3. Link prediction evaluation (raw + filtered, both prediction sides).
    evaluation = evaluate_model(model, dataset)
    rows = [evaluation.as_row()]

    # 4. The observed-feature baselines from the paper.
    mined = AmieMiner(dataset.train, AmieConfig()).mine()
    amie = RuleBasedPredictor(mined.rules, dataset.train, dataset.num_entities)
    rows.append(evaluate_model(amie, dataset, model_name="AMIE").as_row())

    simple = SimpleRuleModel(dataset.train, dataset.num_entities)
    rows.append(evaluate_model(simple, dataset, model_name="SimpleModel").as_row())

    print(render_table(rows, title="Link prediction on FB15k-like"))
    print("\nNote how the statistics-based baselines rival the embedding model on "
          "this redundancy-ridden benchmark — the paper's central observation.")


if __name__ == "__main__":
    main()
