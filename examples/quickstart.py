"""Quickstart: declare an experiment as a spec, run it, inspect the artifacts.

Run with ``python examples/quickstart.py``.

The script walks through the declarative workflow of the library:

1. load the experiment declaration from ``examples/specs/quickstart.toml``
   (the FB15k-like replica, a TransE model and the paper's observed-feature
   baselines) — the same file also runs via
   ``repro-kgc run examples/specs/quickstart.toml``,
2. execute its staged pipeline (``ingest -> audit -> train -> evaluate ->
   report``) with a :class:`repro.api.Runner`,
3. read individual artifacts — the dataset, the §4 redundancy audit and the
   per-model evaluations — back out of the keyed artifact store.
"""

from __future__ import annotations

from pathlib import Path

from repro.api import ExperimentSpec, Runner

SPEC_PATH = Path(__file__).parent / "specs" / "quickstart.toml"


def main() -> None:
    # 1. The experiment is a *file*, not a pile of flags: load and validate it.
    spec = ExperimentSpec.load(SPEC_PATH)
    print(f"spec {spec.name!r} (fingerprint {spec.fingerprint()})")
    print(f"  datasets: {', '.join(spec.datasets)}")
    print(f"  lineup:   {', '.join(spec.models)}"
          f"{' + AMIE' if spec.include_amie else ''}\n")

    # 2. Execute the staged pipeline.  The report carries the rendered tables;
    #    every intermediate artifact lands in the runner's keyed store.
    runner = Runner(spec)
    report = runner.run()
    print(report.text)

    # 3. Artifacts are addressable by structured key.
    store = runner.store
    dataset = store[("dataset", "FB15k-like")]
    redundancy = store[("redundancy", "FB15k-like")]
    transe = store[("evaluation", "TransE", "FB15k-like")]
    simple = store[("evaluation", "SimpleModel", "FB15k-like")]
    print(f"\nFB15k-like: {dataset.num_entities} entities, "
          f"{len(redundancy.reverse_pairs)} reverse relation pairs in the audit")
    print(f"TransE FMRR      {transe.filtered_metrics().mean_reciprocal_rank:.4f}")
    print(f"SimpleModel FMRR {simple.filtered_metrics().mean_reciprocal_rank:.4f}")
    print("\nNote how the statistics-based baselines rival the embedding model on "
          "this redundancy-ridden benchmark — the paper's central observation.")


if __name__ == "__main__":
    main()
