"""Compare the whole model zoo on a redundant benchmark and its clean variant.

Run with ``python examples/model_comparison.py``.

This reproduces the heart of the paper's argument on a laptop in a couple of
minutes, driven entirely by the declarative spec in
``examples/specs/model_comparison.toml``: every core embedding model is
trained on the WN18-like replica (dominated by reverse and symmetric
relations) and on the WN18RR-like variant produced by the de-redundancy
transform.  The side-by-side filtered metrics show the collapse the paper
calls R1, together with the per-relation-category break-down of its §5.3
analysis.  The spec also demonstrates a per-model override (ConvE trains with
a different embedding dimension).
"""

from __future__ import annotations

from pathlib import Path

from repro.api import ExperimentSpec, Runner
from repro.core import render_matrix, render_table
from repro.eval import category_side_hits
from repro.experiments import WN18, WN18RR

SPEC_PATH = Path(__file__).parent / "specs" / "model_comparison.toml"


def main() -> None:
    spec = ExperimentSpec.load(SPEC_PATH)
    runner = Runner(spec)
    report = runner.run(stages=["ingest", "train", "evaluate"])

    rows = []
    for dataset_name in (WN18, WN18RR):
        for model_name in spec.models:
            evaluation = runner.store[("evaluation", model_name, dataset_name)]
            metrics = evaluation.filtered_metrics()
            rows.append({
                "model": model_name,
                "dataset": dataset_name,
                "FMR": metrics.mean_rank,
                "FMRR": metrics.mean_reciprocal_rank,
                "FHits@1": 100 * metrics.hits_at_1,
                "FHits@10": 100 * metrics.hits_at_10,
            })
        print(f"finished {dataset_name}")

    print()
    print(render_table(rows, title="Filtered link-prediction metrics, WN18-like vs WN18RR-like"))

    from repro.api.pipeline import ensure_categories

    categories = ensure_categories(runner.store, runner.config, WN18RR)
    results_on_clean = {
        model: runner.store[("evaluation", model, WN18RR)] for model in spec.models
    }
    per_category = category_side_hits(results_on_clean, categories)
    flattened = {
        model: {f"{category}/{side}": value for category, sides in table.items() for side, value in sides.items()}
        for model, table in per_category.items()
    }
    print()
    print(render_matrix(flattened, row_label="model",
                        title="FHits@10 by relation category and side on WN18RR-like (Table 10 style)"))
    print("\nEvery model loses most of its accuracy once the reverse relations are "
          "removed — the paper's R1 — and no successor convincingly beats TransE (R2).")


if __name__ == "__main__":
    main()
