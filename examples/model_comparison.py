"""Compare the whole model zoo on a redundant benchmark and its clean variant.

Run with ``python examples/model_comparison.py``.

This reproduces the heart of the paper's argument on a laptop in a couple of
minutes: every embedding model is trained twice — once on the WN18-like
replica (dominated by reverse and symmetric relations) and once on the
WN18RR-like variant produced by the de-redundancy transform — and the
side-by-side filtered metrics show the collapse the paper calls R1, together
with the per-relation-category break-down of its §5.3 analysis.
"""

from __future__ import annotations

from repro.core import dataset_relation_categories, make_wn18rr_like, render_matrix, render_table
from repro.eval import category_side_hits, evaluate_model
from repro.kg import wn18_like
from repro.models import CORE_MODELS, ModelConfig, TrainingConfig, make_model, train_model


def main() -> None:
    original = wn18_like(scale="tiny", seed=16)
    clean = make_wn18rr_like(original)
    training = TrainingConfig(epochs=40, batch_size=256, num_negatives=4, learning_rate=0.05)

    rows = []
    results_on_clean = {}
    for model_name in CORE_MODELS:
        for dataset in (original, clean):
            extra = {"embedding_height": 4} if model_name == "ConvE" else {}
            model = make_model(model_name, dataset.num_entities, dataset.num_relations,
                               ModelConfig(dim=24, seed=0, extra=extra))
            train_model(model, dataset, training)
            evaluation = evaluate_model(model, dataset, model_name=model_name)
            metrics = evaluation.filtered_metrics()
            rows.append({
                "model": model_name,
                "dataset": dataset.name,
                "FMR": metrics.mean_rank,
                "FMRR": metrics.mean_reciprocal_rank,
                "FHits@1": 100 * metrics.hits_at_1,
                "FHits@10": 100 * metrics.hits_at_10,
            })
            if dataset is clean:
                results_on_clean[model_name] = evaluation
        print(f"finished {model_name}")

    print()
    print(render_table(rows, title="Filtered link-prediction metrics, WN18-like vs WN18RR-like"))

    categories = dataset_relation_categories(clean)
    per_category = category_side_hits(results_on_clean, categories)
    flattened = {
        model: {f"{category}/{side}": value for category, sides in table.items() for side, value in sides.items()}
        for model, table in per_category.items()
    }
    print()
    print(render_matrix(flattened, row_label="model",
                        title="FHits@10 by relation category and side on WN18RR-like (Table 10 style)"))
    print("\nEvery model loses most of its accuracy once the reverse relations are "
          "removed — the paper's R1 — and no successor convincingly beats TransE (R2).")


if __name__ == "__main__":
    main()
