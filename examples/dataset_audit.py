"""Audit a link-prediction benchmark for the redundancy defects of the paper.

Run with ``python examples/dataset_audit.py [path/to/dataset_dir]``.

Given a dataset (by default the WN18-like replica; optionally any directory in
the standard ``train.txt`` / ``valid.txt`` / ``test.txt`` TSV layout, e.g. a
real FB15k download), the script reports:

* reverse / duplicate / reverse-duplicate relation pairs and symmetric
  relations (§4.2),
* Cartesian product relations (§4.3),
* the test-set leakage bitmap of Figure 4 and the headline leakage shares,
* the relation cardinality categories (1-1 / 1-n / n-1 / n-m).

This is the paper's §4 analysis packaged as a reusable audit tool.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core import (
    analyse_leakage,
    analyse_redundancy,
    dataset_relation_categories,
    category_distribution,
    find_cartesian_relations,
    render_key_values,
    render_table,
)
from repro.kg import dataset_statistics, load_dataset, wn18_like


def main() -> None:
    if len(sys.argv) > 1:
        dataset = load_dataset(Path(sys.argv[1]))
    else:
        dataset = wn18_like(scale="tiny", seed=16)

    print(render_table([dataset_statistics(dataset).as_row()], title=f"Auditing {dataset.name}"))
    all_triples = dataset.all_triples()

    # -- relation-level redundancy (§4.2) ------------------------------------
    redundancy = analyse_redundancy(all_triples)
    rows = []
    for overlap in redundancy.reverse_pairs:
        rows.append({"kind": "reverse", "relation A": dataset.relation_name(overlap.relation_a),
                     "relation B": dataset.relation_name(overlap.relation_b),
                     "overlap/|A|": overlap.share_of_a, "overlap/|B|": overlap.share_of_b})
    for overlap in redundancy.duplicate_pairs:
        rows.append({"kind": "duplicate", "relation A": dataset.relation_name(overlap.relation_a),
                     "relation B": dataset.relation_name(overlap.relation_b),
                     "overlap/|A|": overlap.share_of_a, "overlap/|B|": overlap.share_of_b})
    for overlap in redundancy.reverse_duplicate_pairs:
        rows.append({"kind": "reverse duplicate", "relation A": dataset.relation_name(overlap.relation_a),
                     "relation B": dataset.relation_name(overlap.relation_b),
                     "overlap/|A|": overlap.share_of_a, "overlap/|B|": overlap.share_of_b})
    for relation in redundancy.symmetric_relations:
        rows.append({"kind": "symmetric", "relation A": dataset.relation_name(relation),
                     "relation B": "(itself)", "overlap/|A|": 1.0, "overlap/|B|": 1.0})
    print()
    print(render_table(rows, title="Redundant relations detected (theta = 0.8)"))

    # -- Cartesian product relations (§4.3) -----------------------------------
    cartesian = find_cartesian_relations(all_triples)
    cartesian_rows = [
        {"relation": dataset.relation_name(item.relation), "#triples": item.num_triples,
         "|S_r|": item.num_subjects, "|O_r|": item.num_objects, "density": item.density}
        for item in cartesian
    ]
    print()
    print(render_table(cartesian_rows, title="Cartesian product relations (density > 0.8)"))

    # -- test-set leakage (Figure 4, §4.2.1) -----------------------------------
    leakage = analyse_leakage(dataset, redundancy)
    print()
    print(render_key_values({
        "training triples forming reverse pairs": leakage.training_reverse_share,
        "test triples with reverse in training": leakage.test_reverse_in_train_share,
        "test triples with any redundancy": leakage.test_redundant_share,
    }, title="Leakage summary"))
    breakdown_rows = [{"case": case, "share %": share} for case, share in leakage.bitmap_breakdown().items()]
    print()
    print(render_table(breakdown_rows, title="Figure-4 style bitmap breakdown of the test set"))

    # -- relation categories -----------------------------------------------------
    categories = dataset_relation_categories(dataset)
    print()
    print(render_key_values(category_distribution(categories), title="Test-relation cardinality categories"))


if __name__ == "__main__":
    main()
