"""Packaging for the SIGMOD 2020 KGC re-evaluation reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) deliberately: the legacy
develop-mode path lets ``pip install -e .`` work even in offline environments
without the ``wheel`` package, which is how CI installs the project before
running the test suite and the benchmark regression gate.
"""

from setuptools import find_packages, setup

setup(
    name="repro-kgc",
    version="0.4.0",
    description=(
        "Reproduction of 'Realistic Re-evaluation of Knowledge Graph Completion "
        "Methods: An Experimental Study' (SIGMOD 2020)"
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy>=1.22",
        # TOML spec files: stdlib tomllib from 3.11, the tomli backport below.
        'tomli>=1.1; python_version < "3.11"',
    ],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "lint": ["ruff"],
    },
    entry_points={
        "console_scripts": ["repro-kgc=repro.cli:main"],
    },
)
