"""Setup shim so `pip install -e .` works in offline environments without the
`wheel` package (legacy develop-mode install); configuration is in pyproject.toml."""
from setuptools import setup

setup()
